// Package gateway implements pwrsimgw, the consistent-hash front of a
// sharded pwrsimd fleet. It proxies the daemon's /v1/* API unchanged —
// responses are byte-identical to hitting a backend directly — while
// routing each request's (trace, platform) key to the same backend every
// time, so every shard's replay/skeleton cache stays hot for its own keys
// and fleet throughput scales with backend count instead of stalling on
// one process's cache.
//
// The gateway maintains:
//
//   - a consistent-hash ring (virtual nodes) over the ready backends;
//     membership changes move only ~1/N of the keyspace (see ring.go);
//   - active health checks against each backend's GET /readyz, driving a
//     down → (warming →) ready state machine; joins optionally warm the
//     shard's named apps before the backend takes traffic;
//   - per-backend connection pools with bounded in-flight counts; a
//     saturated shard sheds (429 + Retry-After) instead of queueing, and
//     a fleet with no ready backend answers 502 with stage "gateway";
//   - per-request timeouts and one hedged retry: if the primary fails at
//     the transport level, or stalls past HedgeAfter, the request is
//     re-sent to the next replica on the ring and the first response wins;
//   - GET /metrics with per-backend request/error/hedge counters, shed
//     counts and ring rebalance/churn accounting.
package gateway

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/stagerr"
	"repro/internal/workload"
)

// Config parameterizes the gateway.
type Config struct {
	// Addr is the listen address (default ":8700").
	Addr string
	// Backends lists the pwrsimd base URLs (e.g. "http://10.0.0.1:8723").
	// Required, non-empty.
	Backends []string
	// VNodes is the virtual-node count per backend on the hash ring
	// (default 128).
	VNodes int
	// MaxInFlightPerBackend bounds concurrently proxied requests per
	// backend; a saturated primary sheds with 429 (default 4×GOMAXPROCS).
	MaxInFlightPerBackend int
	// RequestTimeout bounds one proxied request end to end, hedge included
	// (default 60s).
	RequestTimeout time.Duration
	// HedgeAfter is how long the primary may stall before the request is
	// hedged to the next replica on the ring (default 500ms).
	HedgeAfter time.Duration
	// HealthInterval is the /readyz polling period (default 1s).
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (default 2s).
	HealthTimeout time.Duration
	// MaxBodyBytes bounds proxied request bodies (default 8 MiB).
	MaxBodyBytes int64
	// WarmApps optionally lists Table 3 instance names; when a backend
	// joins the ring, the gateway first replays an analysis of every
	// listed app that hashes to the joining backend, so the shard's cache
	// is hot before real traffic lands on it.
	WarmApps []string
	// WarmIterations is the generated-trace length of warming requests
	// (0 = the server default), and WarmQuick skips calibration during
	// warm-up generation. Both must mirror what real traffic will send for
	// the warmed entries to be the ones traffic hits.
	WarmIterations int
	WarmQuick      bool
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8700"
	}
	if c.VNodes == 0 {
		c.VNodes = 128
	}
	if c.MaxInFlightPerBackend == 0 {
		c.MaxInFlightPerBackend = 4 * runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 500 * time.Millisecond
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout == 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Gateway is the fleet front. Create it with New, start health checking
// with Start (or drive checks manually with CheckNow in tests), serve via
// Handler/Serve/ListenAndServe, and stop with Close/Shutdown.
type Gateway struct {
	cfg      Config
	reg      *metrics
	mux      *http.ServeMux
	http     *http.Server
	backends map[string]*backend
	order    []string // configured order, for deterministic iteration

	mu   sync.RWMutex
	ring *ring

	rr       atomic.Uint64 // round-robin cursor for keyless requests
	draining atomic.Bool
	stopOnce sync.Once
	stopped  chan struct{}
	loopDone chan struct{}
}

// New builds a Gateway over the configured backend pool. All backends
// start down; call Start (or CheckNow) to probe them into the ring.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("gateway: at least one backend is required")
	}
	g := &Gateway{
		cfg:      cfg,
		reg:      newMetrics(),
		mux:      http.NewServeMux(),
		backends: make(map[string]*backend, len(cfg.Backends)),
		ring:     buildRing(nil, cfg.VNodes),
		stopped:  make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	for _, raw := range cfg.Backends {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("gateway: backend %q is not an absolute URL", raw)
		}
		name := u.String()
		if _, dup := g.backends[name]; dup {
			return nil, fmt.Errorf("gateway: duplicate backend %q", name)
		}
		g.backends[name] = newBackend(name, u, cfg)
		g.order = append(g.order, name)
	}
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /readyz", g.handleReadyz)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("/", g.handleProxy)
	g.http = &http.Server{Addr: cfg.Addr, Handler: g.mux}
	return g, nil
}

// Handler exposes the gateway's handler chain for httptest-based tests.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Serve accepts connections on ln until Shutdown.
func (g *Gateway) Serve(ln net.Listener) error { return g.http.Serve(ln) }

// ListenAndServe listens on the configured address until Shutdown.
func (g *Gateway) ListenAndServe() error { return g.http.ListenAndServe() }

// Shutdown stops health checking, marks the gateway draining (its own
// /readyz answers 503) and drains in-flight proxied requests.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.draining.Store(true)
	g.Close()
	return g.http.Shutdown(ctx)
}

// Close stops the health-check loop (idempotent). It does not touch the
// HTTP listener; use Shutdown for a full stop.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stopped) })
}

// gwError writes the gateway's error envelope. It reuses the daemon's
// envelope shape (error, stage, request_id) with stage "gateway", so a
// client sees one error grammar whether a failure originated in a backend
// pipeline stage or in the fleet front itself.
func (g *Gateway) gwError(w http.ResponseWriter, id string, status int, msg string) {
	w.Header().Set(server.RequestIDHeader, id)
	b, _ := json.Marshal(server.ErrorBody{
		Error:     msg,
		Stage:     string(stagerr.Gateway),
		RequestID: id,
	})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, server.HealthBody{
		Status:        "ok",
		UptimeSeconds: g.reg.snap().uptime,
	})
}

// handleReadyz reports the gateway ready when it is not draining and at
// least one backend is in the ring: a gateway with an empty ring can only
// answer 502s, so upstream load balancers should route around it.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case g.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, server.ReadyBody{Status: "draining"})
	case len(g.currentRing().members) == 0:
		writeJSON(w, http.StatusServiceUnavailable, server.ReadyBody{Status: "no-ready-backends"})
	default:
		writeJSON(w, http.StatusOK, server.ReadyBody{Status: "ready"})
	}
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	states := make(map[string]string, len(g.backends))
	for name, b := range g.backends {
		states[name] = b.stateName()
	}
	g.reg.render(w, states)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// wireTraceRef is the subset of the daemon's TraceRef the gateway needs to
// shard on. Unknown body fields are ignored: the gateway keys requests, it
// does not validate them — validation stays the backend's job so gateway
// and direct responses cannot diverge.
type wireTraceRef struct {
	Text       string `json:"text"`
	App        string `json:"app"`
	NProcs     int    `json:"nprocs"`
	Iterations int    `json:"iterations"`
	Quick      bool   `json:"quick"`
}

// wireTraceBody matches any /v1/* request body far enough to find its
// trace reference(s).
type wireTraceBody struct {
	Trace  *wireTraceRef  `json:"trace"`
	Traces []wireTraceRef `json:"traces"`
}

// keyOf canonicalizes one trace reference into a shard key. It mirrors the
// backend's cache keying: generated workloads are memoized per
// (app, nprocs, iterations, quick) with iterations normalized to the
// workload default, so two requests that share a backend cache entry always
// share a shard key; inline text traces key on their content hash.
func keyOf(t wireTraceRef) string {
	if t.Text != "" {
		return fmt.Sprintf("text:%016x", hashKey(t.Text))
	}
	iters := t.Iterations
	if iters == 0 {
		iters = workload.DefaultConfig().Iterations
	}
	return fmt.Sprintf("app:%s|n=%d|i=%d|q=%t", t.App, t.NProcs, iters, t.Quick)
}

// shardKey extracts the consistent-hash key of a request, or "" when the
// request carries no trace reference (GET /v1/apps, malformed bodies —
// the backend will reject those identically wherever they land).
func shardKey(body []byte) string {
	if len(body) == 0 {
		return ""
	}
	var wb wireTraceBody
	if err := json.Unmarshal(body, &wb); err != nil {
		return ""
	}
	if wb.Trace != nil {
		return keyOf(*wb.Trace)
	}
	if len(wb.Traces) > 0 {
		// A multi-trace search (gearopt) shards on the joint key: the
		// whole workload list lands on one backend so its per-trace
		// replays share that backend's cache.
		key := "multi"
		for _, t := range wb.Traces {
			key += "+" + keyOf(t)
		}
		return key
	}
	return ""
}

// candidates resolves a shard key to the backends that may serve it, in
// preference order (primary, hedge replica). Keyless requests rotate over
// the ring members instead, since any backend can serve them.
func (g *Gateway) candidates(key string, n int) []*backend {
	r := g.currentRing()
	if len(r.members) == 0 {
		return nil
	}
	var names []string
	if key == "" {
		start := int(g.rr.Add(1)-1) % len(r.members)
		for i := 0; i < n && i < len(r.members); i++ {
			names = append(names, r.members[(start+i)%len(r.members)])
		}
	} else {
		names = r.sequence(key, n)
	}
	out := make([]*backend, len(names))
	for i, name := range names {
		out[i] = g.backends[name]
	}
	return out
}

// bufferedResp is one backend attempt's fully-read response. Buffering
// whole responses is what makes hedging race-free: the winner is written
// to the client in one piece, the loser is discarded untouched.
type bufferedResp struct {
	status int
	header http.Header
	body   []byte
}

// forward sends one attempt to backend b and reads the full response. uri
// is the inbound request's RequestURI (path + raw query), appended to the
// backend base verbatim so the backend sees exactly what the client sent.
func (g *Gateway) forward(ctx context.Context, b *backend, method, uri string, header http.Header, body []byte) (*bufferedResp, error) {
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimSuffix(b.base.String(), "/")+uri, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"Content-Type", "Accept", server.RequestIDHeader} {
		if v := header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &bufferedResp{status: resp.StatusCode, header: resp.Header, body: rb}, nil
}

// hopByHop are the connection-level headers a proxy must not forward.
var hopByHop = map[string]bool{
	"Connection": true, "Keep-Alive": true, "Proxy-Authenticate": true,
	"Proxy-Authorization": true, "Te": true, "Trailer": true,
	"Transfer-Encoding": true, "Upgrade": true,
}

// writeResp relays a buffered backend response verbatim: status, headers
// (minus hop-by-hop) and the exact body bytes — the byte-identity contract.
func writeResp(w http.ResponseWriter, resp *bufferedResp) {
	for k, vs := range resp.header {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// newRequestID returns a fresh 16-hex-digit random ID (same format the
// daemon assigns), so a request that enters the fleet through the gateway
// is traceable across both tiers with one ID.
func newRequestID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID mirrors the daemon's inbound-ID policy: accept only
// short plain tokens, otherwise assign our own.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// attemptOut is one backend attempt's outcome.
type attemptOut struct {
	b     *backend
	hedge bool
	resp  *bufferedResp
	err   error
}

// handleProxy is the catch-all route: shard, forward, hedge, shed.
func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	route := r.URL.Path
	defer func() { g.reg.observe(route, time.Since(start)) }()

	id := sanitizeRequestID(r.Header.Get(server.RequestIDHeader))
	if id == "" {
		id = newRequestID()
	}
	r.Header.Set(server.RequestIDHeader, id)

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		g.gwError(w, id, http.StatusRequestEntityTooLarge, fmt.Sprintf("request body: %v", err))
		return
	}

	cands := g.candidates(shardKey(body), 2)
	if len(cands) == 0 {
		g.reg.noReady()
		g.gwError(w, id, http.StatusBadGateway, "no ready backends")
		return
	}
	primary := cands[0]
	if !primary.tryAcquire() {
		// The shard's backend is saturated. Shedding here (rather than
		// spilling to the next replica) keeps the key's cache locality
		// intact and surfaces overload to the client immediately.
		g.reg.shedOne()
		w.Header().Set("Retry-After", "1")
		g.gwError(w, id, http.StatusTooManyRequests,
			fmt.Sprintf("shard backend at capacity (%d in flight)", cap(primary.sem)))
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()

	results := make(chan attemptOut, 2)
	launch := func(b *backend, hedge bool) {
		g.reg.attempt(b.name, hedge)
		go func() {
			defer b.release()
			resp, err := g.forward(ctx, b, r.Method, r.URL.RequestURI(), r.Header, body)
			if err != nil {
				g.reg.attemptError(b.name)
			}
			results <- attemptOut{b: b, hedge: hedge, resp: resp, err: err}
		}()
	}
	var hedgeTo *backend
	if len(cands) > 1 {
		hedgeTo = cands[1]
	}
	outstanding := 0
	// tryHedge launches the one hedged retry if a distinct replica exists
	// and has a free slot.
	hedged := false
	tryHedge := func() {
		if hedged || hedgeTo == nil || !hedgeTo.tryAcquire() {
			return
		}
		hedged = true
		outstanding++
		launch(hedgeTo, true)
	}

	outstanding++
	launch(primary, false)
	hedgeTimer := time.NewTimer(g.cfg.HedgeAfter)
	defer hedgeTimer.Stop()
	var lastErr error
	for {
		select {
		case out := <-results:
			outstanding--
			if out.err == nil {
				// First completed HTTP response wins — including backend
				// error statuses, which are proxied verbatim: hedging
				// guards against dead/slow backends, never rewrites what
				// a live backend said.
				if out.hedge {
					g.reg.hedgeWin(out.b.name)
				}
				writeResp(w, out.resp)
				return
			}
			lastErr = out.err
			// Transport failure: hedge immediately rather than waiting
			// for the timer — the replica is the only way this request
			// can still succeed.
			tryHedge()
			if outstanding > 0 {
				continue
			}
			g.gwError(w, id, http.StatusBadGateway,
				fmt.Sprintf("all candidate backends failed: %v", lastErr))
			return
		case <-hedgeTimer.C:
			tryHedge()
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				g.reg.timeoutOne()
				g.gwError(w, id, http.StatusGatewayTimeout, "no backend response in time")
			} else {
				g.gwError(w, id, 499, "client closed request")
			}
			return
		}
	}
}
