package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/stagerr"
)

// newBackendServer boots a real pwrsimd handler on an httptest listener,
// marked ready so gateway health checks admit it.
func newBackendServer(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(server.Config{RequestTimeout: 30 * time.Second})
	srv.MarkReady()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// newGateway builds a gateway over the given backend URLs and runs one
// deterministic health round so ready backends are in the ring.
func newGateway(t *testing.T, cfg Config, urls ...string) *Gateway {
	t.Helper()
	cfg.Backends = urls
	if cfg.HealthTimeout == 0 {
		cfg.HealthTimeout = 2 * time.Second
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(g.Close)
	g.CheckNow(context.Background())
	return g
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	return rec
}

const analyzeBody = `{"trace": {"app": "IS-32", "iterations": 3, "quick": true}, "gear_set": {"kind": "uniform"}}`

// The core contract: a response through the gateway is byte-identical to
// hitting a backend directly, across every proxied route shape (POST with
// a trace key, keyless GET).
func TestProxyByteIdentical(t *testing.T) {
	_, ts1 := newBackendServer(t)
	srv2, ts2 := newBackendServer(t)
	g := newGateway(t, Config{}, ts1.URL, ts2.URL)

	via := postJSON(t, g.Handler(), "/v1/analyze", analyzeBody)
	if via.Code != 200 {
		t.Fatalf("gateway analyze = %d: %s", via.Code, via.Body.String())
	}
	direct := postJSON(t, srv2.Handler(), "/v1/analyze", analyzeBody)
	if direct.Code != 200 {
		t.Fatalf("direct analyze = %d", direct.Code)
	}
	if !bytes.Equal(via.Body.Bytes(), direct.Body.Bytes()) {
		t.Fatalf("gateway response differs from direct:\n gateway: %s\n direct:  %s",
			via.Body.String(), direct.Body.String())
	}
	if ct := via.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("gateway dropped Content-Type, got %q", ct)
	}

	viaApps := httptest.NewRecorder()
	g.Handler().ServeHTTP(viaApps, httptest.NewRequest("GET", "/v1/apps", nil))
	directApps := httptest.NewRecorder()
	srv2.Handler().ServeHTTP(directApps, httptest.NewRequest("GET", "/v1/apps", nil))
	if !bytes.Equal(viaApps.Body.Bytes(), directApps.Body.Bytes()) {
		t.Fatal("keyless GET /v1/apps differs via gateway")
	}
}

// Requests for one key must always land on the same backend — that is the
// whole point of the ring — while distinct keys spread across the fleet.
func TestConsistentRouting(t *testing.T) {
	_, ts1 := newBackendServer(t)
	_, ts2 := newBackendServer(t)
	g := newGateway(t, Config{}, ts1.URL, ts2.URL)

	for i := 0; i < 5; i++ {
		rec := postJSON(t, g.Handler(), "/v1/analyze", analyzeBody)
		if rec.Code != 200 {
			t.Fatalf("request %d = %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	snap := g.reg.snap()
	key := keyOf(wireTraceRef{App: "IS-32", Iterations: 3, Quick: true})
	owner := g.currentRing().owner(key)
	if got := snap.backends[owner].requests; got != 5 {
		t.Fatalf("owner %s served %d of 5 requests for its key", owner, got)
	}
	for name, c := range snap.backends {
		if name != owner && c.requests != 0 {
			t.Fatalf("non-owner %s saw %d requests for a key it does not own", name, c.requests)
		}
	}
}

// stallUntilKilled is a fake backend that answers health checks but hangs
// /v1/* requests until the test kills it — the "backend killed mid-request"
// scenario. Killing closes all its connections, so the in-flight proxy
// attempt fails at the transport level.
func stallBackend(t *testing.T) (*httptest.Server, func()) {
	t.Helper()
	block := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(block) }) }
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"status":"ready"}`)
			return
		}
		<-block // hang until the backend is "killed"
	}))
	t.Cleanup(func() {
		unblock()
		ts.Close()
	})
	return ts, unblock
}

// findStallKey returns an analyze body whose shard primary is the stalling
// backend, so the request is forced onto the doomed instance and only the
// hedge can save it.
func findStallKey(t *testing.T, g *Gateway, stallURL string) string {
	t.Helper()
	for iters := 1; iters <= 64; iters++ {
		key := keyOf(wireTraceRef{App: "IS-32", Iterations: iters, Quick: true})
		seq := g.currentRing().sequence(key, 2)
		if len(seq) == 2 && seq[0] == stallURL {
			return fmt.Sprintf(`{"trace": {"app": "IS-32", "iterations": %d, "quick": true}, "gear_set": {"kind": "uniform"}}`, iters)
		}
	}
	t.Fatal("no key hashes to the stalling backend as primary")
	return ""
}

// A backend that dies mid-request: the hedged retry to the next ring
// replica wins, and the response is still byte-identical to a direct call.
func TestHedgeWinsWhenBackendKilledMidRequest(t *testing.T) {
	stall, kill := stallBackend(t)
	srv2, ts2 := newBackendServer(t)
	g := newGateway(t, Config{HedgeAfter: 25 * time.Millisecond, RequestTimeout: 30 * time.Second},
		stall.URL, ts2.URL)
	body := findStallKey(t, g, stall.URL)

	// Kill the stalled backend shortly after the request is in flight:
	// its connection drops mid-request, after the hedge timer has already
	// dispatched the retry to the healthy replica.
	go func() {
		time.Sleep(100 * time.Millisecond)
		kill()
		stall.CloseClientConnections()
	}()
	rec := postJSON(t, g.Handler(), "/v1/analyze", body)
	if rec.Code != 200 {
		t.Fatalf("hedged request = %d: %s", rec.Code, rec.Body.String())
	}
	direct := postJSON(t, srv2.Handler(), "/v1/analyze", body)
	if !bytes.Equal(rec.Body.Bytes(), direct.Body.Bytes()) {
		t.Fatal("hedged response differs from a direct backend call")
	}
	snap := g.reg.snap()
	if snap.backends[ts2.URL].hedges == 0 {
		t.Fatal("no hedge launched against the replica")
	}
	if snap.backends[ts2.URL].hedgeWins == 0 {
		t.Fatal("hedge served the response but no hedge win was recorded")
	}
}

// A backend that is down before the request even starts: the transport
// error triggers an immediate hedge, well before the hedge timer.
func TestImmediateHedgeOnTransportError(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ready"}`)
	}))
	srv2, ts2 := newBackendServer(t)
	// Long hedge timer: if the hedge only fired on the timer, this test
	// would time out — the immediate-on-error path must carry it.
	g := newGateway(t, Config{HedgeAfter: 10 * time.Second, RequestTimeout: 5 * time.Second},
		dead.URL, ts2.URL)
	body := findStallKey(t, g, dead.URL)
	dead.Close() // now every /v1/* attempt gets connection refused

	start := time.Now()
	rec := postJSON(t, g.Handler(), "/v1/analyze", body)
	if rec.Code != 200 {
		t.Fatalf("hedged request = %d: %s", rec.Code, rec.Body.String())
	}
	if took := time.Since(start); took > 4*time.Second {
		t.Fatalf("hedge took %v; the transport error should have hedged immediately", took)
	}
	direct := postJSON(t, srv2.Handler(), "/v1/analyze", body)
	if !bytes.Equal(rec.Body.Bytes(), direct.Body.Bytes()) {
		t.Fatal("hedged response differs from a direct backend call")
	}
}

// With every backend down, the gateway answers the fleet-level error: a
// 502 envelope in the daemon's error grammar with stage "gateway".
func TestAllBackendsDown(t *testing.T) {
	_, ts1 := newBackendServer(t)
	g := newGateway(t, Config{}, ts1.URL)
	ts1.Close()
	g.CheckNow(context.Background()) // observe the death

	rec := postJSON(t, g.Handler(), "/v1/analyze", analyzeBody)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("all-down request = %d, want 502: %s", rec.Code, rec.Body.String())
	}
	var eb server.ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatalf("502 body is not the error envelope: %s", rec.Body.String())
	}
	if eb.Stage != string(stagerr.Gateway) {
		t.Fatalf("502 stage = %q, want %q", eb.Stage, stagerr.Gateway)
	}
	if eb.RequestID == "" {
		t.Fatal("502 envelope carries no request_id")
	}
	if g.reg.snap().noBackend == 0 {
		t.Fatal("no_ready_backend counter did not move")
	}
	// The gateway's own readiness reflects the empty ring.
	rz := httptest.NewRecorder()
	g.Handler().ServeHTTP(rz, httptest.NewRequest("GET", "/readyz", nil))
	if rz.Code != http.StatusServiceUnavailable {
		t.Fatalf("gateway readyz with empty ring = %d, want 503", rz.Code)
	}
}

// A saturated shard sheds with 429 + Retry-After instead of queueing; the
// hedge replica is NOT borrowed for primary overload, so cache locality
// survives load spikes.
func TestShedWhenShardSaturated(t *testing.T) {
	inFirst := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"status":"ready"}`)
			return
		}
		once.Do(func() { close(inFirst) })
		<-release
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	defer slow.Close()
	defer close(release)

	g := newGateway(t, Config{MaxInFlightPerBackend: 1, HedgeAfter: 10 * time.Second}, slow.URL)
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postJSON(t, g.Handler(), "/v1/analyze", analyzeBody) }()
	<-inFirst // the single slot is now held

	rec := postJSON(t, g.Handler(), "/v1/analyze", analyzeBody)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated shard = %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}
	var eb server.ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Stage != string(stagerr.Gateway) {
		t.Fatalf("shed envelope malformed: %s", rec.Body.String())
	}
	if g.reg.snap().shed == 0 {
		t.Fatal("shed counter did not move")
	}
}

// Ring redistribution after a backend leaves: the gateway's key-churn
// counter shows only ~1/N of the keyspace moved, and subsequent requests
// re-route without error.
func TestRebalanceAfterBackendLeaves(t *testing.T) {
	var backends []*httptest.Server
	var urls []string
	for i := 0; i < 4; i++ {
		_, ts := newBackendServer(t)
		backends = append(backends, ts)
		urls = append(urls, ts.URL)
	}
	g := newGateway(t, Config{}, urls...)
	snap := g.reg.snap()
	if snap.rebalances != 1 {
		t.Fatalf("initial probe produced %d rebalances, want 1", snap.rebalances)
	}

	backends[0].Close()
	g.CheckNow(context.Background())
	snap = g.reg.snap()
	if snap.rebalances != 2 {
		t.Fatalf("leave produced %d rebalances, want 2", snap.rebalances)
	}
	if frac := snap.lastChurn; frac < 0.125 || frac > 0.45 {
		t.Fatalf("leave of 1-of-4 moved %.1f%% of keys, want ~25%% (consistent hashing, not rehash-everything)", 100*frac)
	}
	// Fleet still serves, whatever the key's old owner was.
	for iters := 1; iters <= 8; iters++ {
		body := fmt.Sprintf(`{"trace": {"app": "IS-32", "iterations": %d, "quick": true}, "gear_set": {"kind": "uniform"}}`, iters)
		if rec := postJSON(t, g.Handler(), "/v1/analyze", body); rec.Code != 200 {
			t.Fatalf("post-leave request (iters %d) = %d: %s", iters, rec.Code, rec.Body.String())
		}
	}
	// No probe key may still map to the dead backend.
	r := g.currentRing()
	for i := 0; i < 64; i++ {
		if owner := r.owner(fmt.Sprintf("probe/%d", i)); owner == urls[0] {
			t.Fatalf("key still owned by the departed backend %s", owner)
		}
	}
}

// A join with WarmApps configured pre-faults the joining backend's shard:
// by the time it takes traffic, its caches already hold the named apps,
// so the first real request is a hit.
func TestWarmOnJoin(t *testing.T) {
	srv, ts := newBackendServer(t)
	g := newGateway(t, Config{
		WarmApps:       []string{"IS-32", "IS-64"},
		WarmIterations: 2,
		WarmQuick:      true,
	}, ts.URL)

	snap := g.reg.snap()
	if snap.warmups != 2 {
		t.Fatalf("join issued %d warmups, want 2 (sole backend owns every app)", snap.warmups)
	}
	if !g.backends[ts.URL].ready() {
		t.Fatal("backend not ready after warm-up")
	}
	stats := srv.Cache().Stats()
	if stats.Entries == 0 {
		t.Fatal("warming left the backend's replay cache empty")
	}
	misses := stats.Misses
	body := `{"trace": {"app": "IS-32", "iterations": 2, "quick": true}, "gear_set": {"kind": "uniform"}}`
	if rec := postJSON(t, g.Handler(), "/v1/analyze", body); rec.Code != 200 {
		t.Fatalf("post-warm request = %d", rec.Code)
	}
	if after := srv.Cache().Stats().Misses; after != misses {
		t.Fatalf("first real request missed the cache (%d → %d misses) despite warming", misses, after)
	}
}

// Gateway metrics render the full per-backend exposition.
func TestGatewayMetricsExposition(t *testing.T) {
	_, ts1 := newBackendServer(t)
	g := newGateway(t, Config{}, ts1.URL)
	postJSON(t, g.Handler(), "/v1/analyze", analyzeBody)

	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	out := rec.Body.String()
	for _, w := range []string{
		"pwrsimgw_backend_ready{backend=",
		"pwrsimgw_backend_requests_total{backend=",
		"pwrsimgw_backend_hedges_total{backend=",
		"pwrsimgw_ring_members 1",
		"pwrsimgw_ring_rebalance_total 1",
		"pwrsimgw_shed_total 0",
		"pwrsimgw_proxied_total{route=\"/v1/analyze\"} 1",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("metrics missing %q", w)
		}
	}
}

// Draining gateways stop advertising readiness but finish what they hold.
func TestGatewayShutdownMarksDraining(t *testing.T) {
	_, ts1 := newBackendServer(t)
	g := newGateway(t, Config{}, ts1.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("draining gateway readyz = %d %s", rec.Code, rec.Body.String())
	}
}

// Config validation rejects unusable pools.
func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty backend pool")
	}
	if _, err := New(Config{Backends: []string{"not a url"}}); err == nil {
		t.Fatal("New accepted a relative backend URL")
	}
	if _, err := New(Config{Backends: []string{"http://a:1", "http://a:1"}}); err == nil {
		t.Fatal("New accepted duplicate backends")
	}
}

// The health loop runs autonomously once started.
func TestHealthLoopObservesJoin(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	g := newGateway(t, Config{HealthInterval: 10 * time.Millisecond}, ts.URL)
	g.Start()
	defer g.Close()
	if g.backends[ts.URL].ready() {
		t.Fatal("backend ready before it reported readiness")
	}
	srv.MarkReady()
	deadline := time.Now().Add(2 * time.Second)
	for !g.backends[ts.URL].ready() {
		if time.Now().After(deadline) {
			t.Fatal("health loop never observed the backend turning ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
