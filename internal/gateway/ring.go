package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is an immutable consistent-hash ring over the currently-ready
// backends. Each member contributes vnodes virtual points, so load (and
// key ownership) spreads evenly even for small fleets, and a membership
// change moves only ~1/N of the keyspace instead of rehashing everything —
// which is what keeps each backend's replay cache hot across joins and
// leaves. Rebuilds produce a new ring; readers hold a snapshot, so lookups
// never lock.
type ring struct {
	points  []ringPoint // sorted by hash, clockwise
	members []string    // sorted, distinct
}

type ringPoint struct {
	hash  uint64
	owner string
}

// hashKey maps an arbitrary shard key onto the ring's keyspace: FNV-1a
// for the byte mixing, then a murmur3-style finalizer. The finalizer
// matters — ring ordering compares full 64-bit values, and raw FNV-1a of
// short, similar strings (app names, "url#vnode") clusters badly in the
// high bits, which skews ownership shares by several × without it.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// buildRing constructs the ring for a member set. Order of members does not
// matter; the vnode placement depends only on (member, index) hashes, so
// the same membership always yields the identical ring.
func buildRing(members []string, vnodes int) *ring {
	r := &ring{
		points:  make([]ringPoint, 0, len(members)*vnodes),
		members: append([]string(nil), members...),
	}
	sort.Strings(r.members)
	for _, m := range r.members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashKey(fmt.Sprintf("%s#%d", m, v)),
				owner: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.owner < b.owner // total order even on (vanishingly rare) hash ties
	})
	return r
}

// owner returns the member owning key, or "" on an empty ring.
func (r *ring) owner(key string) string {
	seq := r.sequence(key, 1)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// sequence walks clockwise from key's position and returns up to n distinct
// members in preference order: the primary first, then the replica a hedged
// retry should target, and so on. An empty ring yields nil.
func (r *ring) sequence(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.owner] {
			seen[p.owner] = true
			out = append(out, p.owner)
		}
	}
	return out
}

// churnProbes is the fixed probe-key count used to estimate how much of the
// keyspace a rebuild moved. 1024 probes bound the estimate's error to a few
// percent, plenty for the ~1/N assertion the metric exists to support.
const churnProbes = 1024

// churn estimates the fraction of the keyspace whose owner differs between
// two rings, by comparing ownership of a fixed deterministic probe set.
// Keys that had no owner before (empty old ring) count as moved, so the
// first backend joining reports churn 1 — every key changed from "nowhere"
// to it.
func churn(old, new *ring) (moved int, fraction float64) {
	for i := 0; i < churnProbes; i++ {
		k := fmt.Sprintf("probe/%d", i)
		if old.owner(k) != new.owner(k) {
			moved++
		}
	}
	return moved, float64(moved) / churnProbes
}
