package gateway

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// backendCounters accumulates per-backend proxy outcomes.
type backendCounters struct {
	requests  int64 // attempts sent to this backend
	errors    int64 // transport failures (connection refused, reset, ...)
	hedges    int64 // hedged attempts launched against this backend
	hedgeWins int64 // hedged attempts whose response was the one served
}

// routeCounters accumulates per-route proxy latency.
type routeCounters struct {
	count        int64
	totalSeconds float64
	maxSeconds   float64
}

// metrics collects the gateway's operational counters. All methods are safe
// for concurrent use.
type metrics struct {
	mu         sync.Mutex
	start      time.Time
	backends   map[string]*backendCounters
	routes     map[string]*routeCounters
	shed       int64 // 429s: primary saturated
	noBackend  int64 // 502s: no ready backend for the key
	timeouts   int64 // 504s: no backend answered within the request timeout
	rebalances int64 // ring rebuilds caused by membership changes
	keysMoved  int64 // cumulative probe keys that changed owner across rebuilds
	lastChurn  float64
	warmups    int64 // cache-warming requests issued on backend joins
}

func newMetrics() *metrics {
	return &metrics{
		start:    time.Now(),
		backends: make(map[string]*backendCounters),
		routes:   make(map[string]*routeCounters),
	}
}

// backendFor returns (creating if needed) a backend's counter slot. Callers
// hold m.mu.
func (m *metrics) backendFor(b string) *backendCounters {
	c := m.backends[b]
	if c == nil {
		c = &backendCounters{}
		m.backends[b] = c
	}
	return c
}

func (m *metrics) attempt(backend string, hedge bool) {
	m.mu.Lock()
	c := m.backendFor(backend)
	c.requests++
	if hedge {
		c.hedges++
	}
	m.mu.Unlock()
}

func (m *metrics) attemptError(backend string) {
	m.mu.Lock()
	m.backendFor(backend).errors++
	m.mu.Unlock()
}

func (m *metrics) hedgeWin(backend string) {
	m.mu.Lock()
	m.backendFor(backend).hedgeWins++
	m.mu.Unlock()
}

func (m *metrics) shedOne()      { m.mu.Lock(); m.shed++; m.mu.Unlock() }
func (m *metrics) noReady()      { m.mu.Lock(); m.noBackend++; m.mu.Unlock() }
func (m *metrics) timeoutOne()   { m.mu.Lock(); m.timeouts++; m.mu.Unlock() }
func (m *metrics) warmupIssued() { m.mu.Lock(); m.warmups++; m.mu.Unlock() }

// rebalanced records one ring rebuild and its estimated keyspace churn.
func (m *metrics) rebalanced(moved int, fraction float64) {
	m.mu.Lock()
	m.rebalances++
	m.keysMoved += int64(moved)
	m.lastChurn = fraction
	m.mu.Unlock()
}

// observe records one finished proxied request on a route.
func (m *metrics) observe(route string, d time.Duration) {
	m.mu.Lock()
	rc := m.routes[route]
	if rc == nil {
		rc = &routeCounters{}
		m.routes[route] = rc
	}
	rc.count++
	sec := d.Seconds()
	rc.totalSeconds += sec
	if sec > rc.maxSeconds {
		rc.maxSeconds = sec
	}
	m.mu.Unlock()
}

// snapshot is used by tests and the render path; it deep-copies under the
// lock so rendering never races counter updates.
type snapshot struct {
	uptime     float64
	backends   map[string]backendCounters
	routes     map[string]routeCounters
	shed       int64
	noBackend  int64
	timeouts   int64
	rebalances int64
	keysMoved  int64
	lastChurn  float64
	warmups    int64
}

func (m *metrics) snap() snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := snapshot{
		uptime:     time.Since(m.start).Seconds(),
		backends:   make(map[string]backendCounters, len(m.backends)),
		routes:     make(map[string]routeCounters, len(m.routes)),
		shed:       m.shed,
		noBackend:  m.noBackend,
		timeouts:   m.timeouts,
		rebalances: m.rebalances,
		keysMoved:  m.keysMoved,
		lastChurn:  m.lastChurn,
		warmups:    m.warmups,
	}
	for b, c := range m.backends {
		s.backends[b] = *c
	}
	for r, c := range m.routes {
		s.routes[r] = *c
	}
	return s
}

// render writes the Prometheus text exposition. Backends render zero-filled
// over the full configured pool (passed in with their current readiness),
// so every backend appears from the first scrape on and `up` flips are
// visible as gauge transitions, not series births.
func (m *metrics) render(w io.Writer, states map[string]string) {
	s := m.snap()
	names := make([]string, 0, len(states))
	for b := range states {
		names = append(names, b)
	}
	sort.Strings(names)
	routes := make([]string, 0, len(s.routes))
	for r := range s.routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)

	fmt.Fprintf(w, "# HELP pwrsimgw_uptime_seconds Seconds since the gateway started.\n")
	fmt.Fprintf(w, "# TYPE pwrsimgw_uptime_seconds gauge\n")
	fmt.Fprintf(w, "pwrsimgw_uptime_seconds %g\n", s.uptime)

	fmt.Fprintf(w, "# HELP pwrsimgw_backend_ready Backend readiness (1 = in the ring).\n")
	fmt.Fprintf(w, "# TYPE pwrsimgw_backend_ready gauge\n")
	ready := 0
	for _, b := range names {
		v := 0
		if states[b] == "ready" {
			v = 1
			ready++
		}
		fmt.Fprintf(w, "pwrsimgw_backend_ready{backend=%q} %d\n", b, v)
	}
	fmt.Fprintf(w, "# HELP pwrsimgw_ring_members Backends currently in the hash ring.\n")
	fmt.Fprintf(w, "# TYPE pwrsimgw_ring_members gauge\n")
	fmt.Fprintf(w, "pwrsimgw_ring_members %d\n", ready)

	fmt.Fprintf(w, "# HELP pwrsimgw_backend_requests_total Proxy attempts by backend.\n")
	fmt.Fprintf(w, "# TYPE pwrsimgw_backend_requests_total counter\n")
	for _, b := range names {
		fmt.Fprintf(w, "pwrsimgw_backend_requests_total{backend=%q} %d\n", b, s.backends[b].requests)
	}
	fmt.Fprintf(w, "# HELP pwrsimgw_backend_errors_total Transport failures by backend.\n")
	fmt.Fprintf(w, "# TYPE pwrsimgw_backend_errors_total counter\n")
	for _, b := range names {
		fmt.Fprintf(w, "pwrsimgw_backend_errors_total{backend=%q} %d\n", b, s.backends[b].errors)
	}
	fmt.Fprintf(w, "# HELP pwrsimgw_backend_hedges_total Hedged attempts launched by backend.\n")
	fmt.Fprintf(w, "# TYPE pwrsimgw_backend_hedges_total counter\n")
	for _, b := range names {
		fmt.Fprintf(w, "pwrsimgw_backend_hedges_total{backend=%q} %d\n", b, s.backends[b].hedges)
	}
	fmt.Fprintf(w, "# HELP pwrsimgw_backend_hedge_wins_total Hedged attempts whose response was served.\n")
	fmt.Fprintf(w, "# TYPE pwrsimgw_backend_hedge_wins_total counter\n")
	for _, b := range names {
		fmt.Fprintf(w, "pwrsimgw_backend_hedge_wins_total{backend=%q} %d\n", b, s.backends[b].hedgeWins)
	}

	fmt.Fprintf(w, "# HELP pwrsimgw_shed_total Requests shed (429) because the shard's backend was saturated.\n")
	fmt.Fprintf(w, "# TYPE pwrsimgw_shed_total counter\n")
	fmt.Fprintf(w, "pwrsimgw_shed_total %d\n", s.shed)
	fmt.Fprintf(w, "# HELP pwrsimgw_no_ready_backend_total Requests failed (502) with no ready backend.\n")
	fmt.Fprintf(w, "# TYPE pwrsimgw_no_ready_backend_total counter\n")
	fmt.Fprintf(w, "pwrsimgw_no_ready_backend_total %d\n", s.noBackend)
	fmt.Fprintf(w, "# HELP pwrsimgw_timeouts_total Requests failed (504) with no backend response in time.\n")
	fmt.Fprintf(w, "# TYPE pwrsimgw_timeouts_total counter\n")
	fmt.Fprintf(w, "pwrsimgw_timeouts_total %d\n", s.timeouts)
	fmt.Fprintf(w, "# HELP pwrsimgw_warmups_total Cache-warming requests issued on backend joins.\n")
	fmt.Fprintf(w, "# TYPE pwrsimgw_warmups_total counter\n")
	fmt.Fprintf(w, "pwrsimgw_warmups_total %d\n", s.warmups)

	fmt.Fprintf(w, "# HELP pwrsimgw_ring_rebalance_total Hash-ring rebuilds caused by membership changes.\n")
	fmt.Fprintf(w, "# TYPE pwrsimgw_ring_rebalance_total counter\n")
	fmt.Fprintf(w, "pwrsimgw_ring_rebalance_total %d\n", s.rebalances)
	fmt.Fprintf(w, "# HELP pwrsimgw_ring_keys_moved_total Probe keys (of %d) that changed owner, summed over rebuilds.\n", churnProbes)
	fmt.Fprintf(w, "# TYPE pwrsimgw_ring_keys_moved_total counter\n")
	fmt.Fprintf(w, "pwrsimgw_ring_keys_moved_total %d\n", s.keysMoved)
	fmt.Fprintf(w, "# HELP pwrsimgw_ring_last_churn_ratio Keyspace fraction moved by the most recent rebuild.\n")
	fmt.Fprintf(w, "# TYPE pwrsimgw_ring_last_churn_ratio gauge\n")
	fmt.Fprintf(w, "pwrsimgw_ring_last_churn_ratio %g\n", s.lastChurn)

	fmt.Fprintf(w, "# HELP pwrsimgw_proxied_total Proxied requests by route.\n")
	fmt.Fprintf(w, "# TYPE pwrsimgw_proxied_total counter\n")
	for _, r := range routes {
		fmt.Fprintf(w, "pwrsimgw_proxied_total{route=%q} %d\n", r, s.routes[r].count)
	}
	fmt.Fprintf(w, "# HELP pwrsimgw_proxy_seconds_sum Summed gateway-side latency by route.\n")
	fmt.Fprintf(w, "# TYPE pwrsimgw_proxy_seconds_sum counter\n")
	for _, r := range routes {
		fmt.Fprintf(w, "pwrsimgw_proxy_seconds_sum{route=%q} %g\n", r, s.routes[r].totalSeconds)
	}
	fmt.Fprintf(w, "# HELP pwrsimgw_proxy_seconds_max Worst gateway-side latency by route.\n")
	fmt.Fprintf(w, "# TYPE pwrsimgw_proxy_seconds_max gauge\n")
	for _, r := range routes {
		fmt.Fprintf(w, "pwrsimgw_proxy_seconds_max{route=%q} %g\n", r, s.routes[r].maxSeconds)
	}
}
