// Package repro is a full reproduction of "Power-Aware Load Balancing Of
// Large Scale MPI Applications" (M. Etinski, J. Corbalan, J. Labarta,
// M. Valero, A. Veidenbaum — IPDPS/IPPS 2009).
//
// Load-imbalanced MPI applications leave some processes blocked in MPI while
// the most loaded process computes. The paper assigns one DVFS gear per
// process so all processes finish their computation phases together:
//
//   - MAX (the static form of the prior Jitter system) scales everyone to
//     the maximum computation time; no process exceeds the nominal top
//     frequency, and CPU energy drops by up to ~60% on highly imbalanced
//     applications without extending execution time.
//   - AVG (the paper's new algorithm) balances to the average computation
//     time, over-clocking the most loaded processes by 10–20% (or one extra
//     2.6 GHz gear); it additionally shortens the execution time.
//
// The package exposes the whole simulation methodology: synthetic MPI
// workload generation calibrated to the paper's Table 3, a Dimemas-style
// message-passing replay simulator, the β execution-time model, DVFS gear
// sets with a linear voltage scenario, the CPU power model (dynamic +
// static), and an experiment harness that regenerates every table and
// figure of the evaluation.
//
// Quick start:
//
//	tr, _ := repro.GenerateWorkload("BT-MZ-32", repro.DefaultWorkloadConfig())
//	six, _ := repro.UniformGearSet(6)
//	res, _ := repro.Analyze(repro.AnalysisConfig{Trace: tr, Set: six, Algorithm: repro.MAX})
//	fmt.Println(res.Norm) // energy 36.2% time 100.0% EDP 36.2%
//
// Beyond the paper's one-shot offline assignment, the package simulates the
// online closed loop its runtime vision implies: RunRebalance iterates an
// application whose per-rank load drifts between iterations (WorkloadDrift),
// observes each executed iteration, and re-solves gears with a pluggable
// policy — RebalanceNever (the static baseline), RebalanceEveryK,
// RebalanceThreshold (balance-degradation trigger with hysteresis) or
// RebalanceCapped (threshold trigger under a peak power budget via the
// power-cap scheduler). Every simulated iteration is an exact retiming of
// one recorded timing skeleton (TimingSkeleton.RetimeScaled), bit-identical
// to a fresh replay of the drifted trace at a fraction of the cost:
//
//	res, _ := repro.RunRebalance(repro.RebalanceConfig{
//	    Trace: tr, Set: six, Policy: repro.RebalanceThreshold,
//	    Drift: repro.WorkloadDrift{Kind: repro.DriftRamp, Magnitude: 0.4, Jitter: 0.02},
//	})
//
// Retiming comes in four tiers, all bit-identical to Simulate:
// TimingSkeleton.Retime re-times one gear vector in a full O(events) pass;
// RetimeScaled folds per-rank load factors in; RetimeDelta re-times only
// the event cone affected by the ranks whose frequency or load changed
// since the previous call on the same DeltaState — the hot path of every
// optimizer neighborhood search; and RetimeBatch scores N gear vectors in
// one struct-of-arrays walk over the schedule (examples/batch shows both,
// and /v1/analyze/batch serves RetimeBatch over HTTP):
//
//	sk, _ := repro.BuildTimingSkeleton(tr, repro.DefaultPlatform(), repro.SimOptions{Beta: 0.5, FMax: repro.FMax})
//	var st repro.DeltaState
//	res, _ := sk.RetimeDelta(&st, freqs, nil) // later calls re-time only what changed
//	batch, _ := sk.RetimeBatch(candidates)    // batch.At(c) is candidate c's SimResult
//
// See the examples directory for runnable programs (examples/rebalance for
// the closed loop, examples/batch for delta/batch retiming), cmd/pwrsim
// for the experiment driver, and docs/ARCHITECTURE.md for the package map
// and dataflow.
package repro
