package repro

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
)

func quickWorkloadConfig() WorkloadConfig {
	cfg := DefaultWorkloadConfig()
	cfg.Iterations = 4
	cfg.SkipPECalibration = true
	return cfg
}

func TestFacadeEndToEnd(t *testing.T) {
	tr, err := GenerateWorkload("BT-MZ-32", quickWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	six, err := UniformGearSet(6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(AnalysisConfig{Trace: tr, Set: six, Algorithm: MAX})
	if err != nil {
		t.Fatal(err)
	}
	if res.Norm.Energy >= 0.6 {
		t.Errorf("BT-MZ energy = %v, want big savings", res.Norm.Energy)
	}
}

func TestFacadeGearSets(t *testing.T) {
	if ContinuousUnlimited().Top().Freq != FMax {
		t.Error("unlimited top")
	}
	if ContinuousLimited().Bottom().Freq != FMin {
		t.Error("limited bottom")
	}
	exp, err := ExponentialGearSet(6)
	if err != nil || exp.Size() != 6 {
		t.Errorf("exponential: %v %v", exp, err)
	}
	oc := OverclockGear()
	if oc.Freq != 2.6 || oc.Volt != 1.6 {
		t.Errorf("overclock gear = %v", oc)
	}
}

func TestFacadeCompare(t *testing.T) {
	tr, err := GenerateWorkload("IS-32", quickWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	six, _ := UniformGearSet(6)
	ocSet, err := six.WithOverclockGear(OverclockGear())
	if err != nil {
		t.Fatal(err)
	}
	maxRes, avgRes, err := CompareAlgorithms(AnalysisConfig{Trace: tr}, six, ocSet)
	if err != nil {
		t.Fatal(err)
	}
	if maxRes.Assignment.Overclocked != 0 {
		t.Error("MAX overclocked")
	}
	if avgRes.Norm.Time > maxRes.Norm.Time+1e-9 {
		t.Errorf("AVG time %v vs MAX %v", avgRes.Norm.Time, maxRes.Norm.Time)
	}
}

func TestFacadeScaledGeneration(t *testing.T) {
	tr, err := GenerateScaled("CG", 16, quickWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRanks() != 16 {
		t.Errorf("ranks = %d", tr.NumRanks())
	}
}

func TestFacadeTraceIO(t *testing.T) {
	tr, err := GenerateWorkload("CG-32", quickWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tr.ComputeTimes(), back.ComputeTimes()
	for r := range a {
		if math.Abs(a[r]-b[r]) > 1e-9 {
			t.Fatalf("rank %d compute differs after round trip", r)
		}
	}
}

func TestFacadeExperiments(t *testing.T) {
	exps := AllExperiments()
	if len(exps) < 13 {
		t.Fatalf("%d experiments", len(exps))
	}
	if _, err := ExperimentByID("table1"); err != nil {
		t.Error(err)
	}
	cfg := DefaultWorkloadConfig()
	cfg.Iterations = 4
	suite := NewExperimentSuite(cfg)
	e, err := ExperimentByID("table1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(suite, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2.30") {
		t.Errorf("table1 output: %s", buf.String())
	}
}

func TestFacadeGantt(t *testing.T) {
	tr, err := GenerateWorkload("BT-MZ-32", quickWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(AnalysisConfig{
		Trace: tr, Set: ContinuousUnlimited(), Algorithm: MAX, RecordTimelines: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderGantt(&buf, res.Orig.Timeline, res.Orig.Time); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#") {
		t.Error("gantt output lacks compute cells")
	}
}

func TestApplicationsList(t *testing.T) {
	apps := Applications()
	if len(apps) != 12 {
		t.Fatalf("%d applications", len(apps))
	}
	if apps[0].Name != "BT-MZ-32" {
		t.Errorf("first = %s", apps[0].Name)
	}
}

func TestDefaults(t *testing.T) {
	if DefaultPlatform().Bandwidth <= 0 {
		t.Error("platform")
	}
	if DefaultPowerConfig().ActivityRatio != 1.5 {
		t.Error("power config")
	}
	if DefaultWorkloadConfig().Iterations != 20 {
		t.Error("workload config")
	}
}

func TestFacadePowerCap(t *testing.T) {
	tr, err := GenerateWorkload("BT-MZ-32", quickWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	six, err := UniformGearSet(6)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := NewPowerModel(DefaultPowerConfig())
	if err != nil {
		t.Fatal(err)
	}
	cap := 0.5 * float64(tr.NumRanks()) * pm.Power(PhaseCompute, GearAtFrequency(FMax))
	res, err := SchedulePowerCap(PowerCapConfig{Trace: tr, Set: six, Cap: cap, Cache: NewReplayCache()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Redistributed.PeakPower > cap || res.Uniform.PeakPower > cap {
		t.Errorf("scheduled peaks %v / %v exceed the cap %v", res.Redistributed.PeakPower, res.Uniform.PeakPower, cap)
	}
	if res.Redistributed.Time > res.Uniform.Time {
		t.Errorf("redistribution %v should not lose to uniform %v", res.Redistributed.Time, res.Uniform.Time)
	}

	// The profile facade reconstructs the uncapped reference peak.
	opts := SimOptions{Beta: 0.5, FMax: FMax, RecordTimeline: true}
	sim, err := Simulate(tr, DefaultPlatform(), opts)
	if err != nil {
		t.Fatal(err)
	}
	gears := make([]Gear, tr.NumRanks())
	for i := range gears {
		gears[i] = GearAtFrequency(FMax)
	}
	profile, err := BuildPowerProfile(pm, sim.Timeline, gears, sim.Time)
	if err != nil {
		t.Fatal(err)
	}
	if profile.Peak() != res.Uncapped.PeakPower {
		t.Errorf("profile peak %v != scheduler's uncapped peak %v", profile.Peak(), res.Uncapped.PeakPower)
	}
	if profile.TimeAbove(profile.Peak()) != 0 {
		t.Error("time above the peak must be zero")
	}
}

func TestFacadeRebalance(t *testing.T) {
	tr, err := GenerateWorkload("IS-32", quickWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	six, err := UniformGearSet(6)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewReplayCache()
	res, err := RunRebalance(RebalanceConfig{
		Trace:      tr,
		Set:        six,
		Policy:     RebalanceThreshold,
		Iterations: 10,
		Drift:      WorkloadDrift{Kind: DriftRamp, Magnitude: 0.4, Jitter: 0.02, Seed: 3},
		Cache:      cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 10 {
		t.Fatalf("%d iterations, want 10", len(res.Iterations))
	}
	if res.Norm.Energy >= 1 {
		t.Errorf("drifting IS-32 rebalancing saved nothing: %v", res.Norm.Energy)
	}
	if res.Reassignments < 1 {
		t.Error("threshold policy never assigned gears")
	}
	// The load-scaled retimer facade: scaling every rank by 1.0 reproduces
	// the plain retiming bit for bit.
	skel, err := BuildTimingSkeleton(tr, DefaultPlatform(), SimOptions{Beta: 0.5, FMax: FMax})
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]float64, tr.NumRanks())
	for i := range ones {
		ones[i] = 1
	}
	plain, err := skel.Retime(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := skel.RetimeScaled(nil, ones, false)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Time != scaled.Time {
		t.Errorf("all-ones RetimeScaled time %v != Retime time %v", scaled.Time, plain.Time)
	}
}

// TestFacadeRebalanceDeterminism pins the closed loop's reproducibility
// contract across the whole policy × drift matrix: with identical seeds,
// two runs are deep-equal in every reported field, and a third run that
// re-simulates every drifted iteration from scratch (FreshReplays) is
// bit-identical to the retimed ones.
func TestFacadeRebalanceDeterminism(t *testing.T) {
	tr, err := GenerateWorkload("IS-32", quickWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	six, err := UniformGearSet(6)
	if err != nil {
		t.Fatal(err)
	}
	policies := []RebalancePolicy{
		RebalanceNever, RebalanceEveryK, RebalanceThreshold,
		RebalanceCapped, RebalancePredictive, RebalancePredictiveCapped,
	}
	drifts := []WorkloadDrift{
		{Kind: DriftRamp, Magnitude: 0.4, Jitter: 0.02, Seed: 3},
		{Kind: DriftWalk, Magnitude: 0.03, Jitter: 0.02, Seed: 3},
		{Kind: DriftStep, Magnitude: 0.4, Jitter: 0.02, Seed: 3},
	}
	cache := NewReplayCache()
	for _, policy := range policies {
		for _, drift := range drifts {
			t.Run(fmt.Sprintf("%s/%s", policy, drift.Kind), func(t *testing.T) {
				cfg := RebalanceConfig{
					Trace:      tr,
					Set:        six,
					Policy:     policy,
					Iterations: 8,
					Drift:      drift,
					Cache:      cache,
				}
				if policy == RebalanceCapped || policy == RebalancePredictiveCapped {
					cfg.Cap = 2000
				}
				if policy == RebalanceEveryK {
					cfg.Period = 3
				}
				first, err := RunRebalance(cfg)
				if err != nil {
					t.Fatal(err)
				}
				second, err := RunRebalance(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(first, second) {
					t.Fatalf("two identically seeded runs diverge:\n%+v\nvs\n%+v", first, second)
				}
				cfg.Cache = nil
				cfg.FreshReplays = true
				fresh, err := RunRebalance(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(first, fresh) {
					t.Fatalf("fresh-replay run diverges from the retimed run:\n%+v\nvs\n%+v", first, fresh)
				}
			})
		}
	}
}
