package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-list"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table1", "fig2", "optimize-gears"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad flag", []string{"-nope"}, "flag provided but not defined"},
		{"positional args", []string{"fig2"}, "unexpected arguments"},
		{"unknown experiment", []string{"-experiment", "nope"}, "unknown id"},
		{"bad iterations", []string{"-iterations", "0"}, "iterations must be positive"},
		{"unwritable out", []string{"-experiment", "table1", "-out", "/nonexistent-dir/x/report.txt"}, "no such file"},
	}
	for _, tc := range cases {
		var out, errOut strings.Builder
		err := run(tc.args, &out, &errOut)
		if err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-experiment", "table1", "-iterations", "2", "-quiet"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "uniform-6") {
		t.Fatalf("report missing gear table:\n%s", out.String())
	}
	if errOut.Len() != 0 {
		t.Fatalf("-quiet still wrote progress: %s", errOut.String())
	}
}

func TestRunWritesOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	var out, errOut strings.Builder
	if err := run([]string{"-experiment", "table1", "-iterations", "2", "-quiet", "-out", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("-out set but report went to stdout: %s", out.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "uniform-6") {
		t.Fatalf("report file missing gear table:\n%s", b)
	}
}
