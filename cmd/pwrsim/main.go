// Command pwrsim regenerates the tables and figures of "Power-Aware Load
// Balancing Of Large Scale MPI Applications" (Etinski et al., IPDPS 2009)
// from the simulation pipeline in this repository.
//
// Usage:
//
//	pwrsim -list
//	pwrsim -experiment fig2
//	pwrsim -experiment all -iterations 20 -out report.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	var (
		expID    = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		iters    = flag.Int("iterations", 20, "iterations per generated trace")
		outPath  = flag.String("out", "", "write the report to a file instead of stdout")
		list     = flag.Bool("list", false, "list available experiments and exit")
		quiet    = flag.Bool("quiet", false, "suppress progress messages on stderr")
		parallel = flag.Int("parallel", runtime.NumCPU(), "worker-pool size for sweep cells (results are identical to serial)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Description)
		}
		return
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		out = f
	}

	cfg := workload.DefaultConfig()
	cfg.Iterations = *iters
	suite := experiments.NewSuite(cfg)
	suite.Workers = *parallel

	run := func(e experiments.Experiment) {
		start := time.Now()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running %s: %s\n", e.ID, e.Description)
		}
		if err := e.Run(suite, out); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  done in %v\n", time.Since(start).Round(time.Millisecond))
		}
	}

	if *expID == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, err := experiments.ByID(*expID)
	if err != nil {
		fatal(err)
	}
	run(e)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pwrsim:", err)
	os.Exit(1)
}
