// Command pwrsim regenerates the tables and figures of "Power-Aware Load
// Balancing Of Large Scale MPI Applications" (Etinski et al., IPDPS 2009)
// from the simulation pipeline in this repository.
//
// Usage:
//
//	pwrsim -list
//	pwrsim -experiment fig2
//	pwrsim -experiment all -iterations 20 -out report.txt
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pwrsim:", err)
		os.Exit(1)
	}
}

// run is main's body, split out so tests can drive flag parsing and the
// error paths with injected streams.
func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("pwrsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expID    = fs.String("experiment", "all", "experiment id (see -list) or 'all'")
		iters    = fs.Int("iterations", 20, "iterations per generated trace")
		outPath  = fs.String("out", "", "write the report to a file instead of stdout")
		list     = fs.Bool("list", false, "list available experiments and exit")
		quiet    = fs.Bool("quiet", false, "suppress progress messages on stderr")
		parallel = fs.Int("parallel", runtime.NumCPU(), "worker-pool size for sweep cells (results are identical to serial)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, exit 0
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", e.ID, e.Description)
		}
		return nil
	}
	if *iters <= 0 {
		return fmt.Errorf("iterations must be positive, got %d", *iters)
	}

	out := stdout
	if *outPath != "" {
		f, cerr := os.Create(*outPath)
		if cerr != nil {
			return cerr
		}
		// A failed close means a truncated report: surface it as run's
		// error (exit 1) unless an earlier error already won.
		defer func() {
			if ferr := f.Close(); ferr != nil && err == nil {
				err = ferr
			}
		}()
		out = f
	}

	cfg := workload.DefaultConfig()
	cfg.Iterations = *iters
	suite := experiments.NewSuite(cfg)
	suite.Workers = *parallel

	runOne := func(e experiments.Experiment) error {
		start := time.Now()
		if !*quiet {
			fmt.Fprintf(stderr, "running %s: %s\n", e.ID, e.Description)
		}
		if err := e.Run(suite, out); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if !*quiet {
			fmt.Fprintf(stderr, "  done in %v\n", time.Since(start).Round(time.Millisecond))
		}
		return nil
	}

	if *expID == "all" {
		for _, e := range experiments.All() {
			if err := runOne(e); err != nil {
				return err
			}
		}
		return nil
	}
	e, err := experiments.ByID(*expID)
	if err != nil {
		return err
	}
	return runOne(e)
}
