package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/paraver"
	"repro/internal/trace"
)

func microTrace() *trace.Trace {
	tr := trace.New("micro", 4)
	loads := []float64{1.0, 0.25, 0.25, 0.25}
	for it := 0; it < 2; it++ {
		for r, w := range loads {
			tr.Add(r, trace.Compute(w))
		}
		for r := 0; r < 4; r++ {
			tr.Add(r, trace.Coll(trace.CollBarrier, 0), trace.IterMark())
		}
	}
	return tr
}

func writeFile(t *testing.T, name string, write func(f *os.File) error) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunNativeTrace(t *testing.T) {
	path := writeFile(t, "micro.trace", func(f *os.File) error { return trace.Write(f, microTrace()) })
	var out, errOut strings.Builder
	if err := run([]string{path}, strings.NewReader(""), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"application:   micro",
		"ranks:         4",
		"iterations:    2",
		"load balance:  43.75%",
		"per-rank computation",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunParaverTrace exercises the header-sniffing branch: a .prv file is
// detected by its #Paraver magic and imported through the paraver reader.
func TestRunParaverTrace(t *testing.T) {
	path := writeFile(t, "micro.prv", func(f *os.File) error { return paraver.Write(f, microTrace()) })
	head, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(head), "#Paraver") {
		t.Fatalf("fixture is not a Paraver file: %.40q", head)
	}
	var out, errOut strings.Builder
	if err := run([]string{path}, strings.NewReader(""), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ranks:         4") {
		t.Errorf("paraver import lost ranks:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "load balance:") {
		t.Errorf("paraver branch skipped the replay:\n%s", out.String())
	}
}

func TestRunReadsStdin(t *testing.T) {
	var text strings.Builder
	if err := trace.Write(&text, microTrace()); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if err := run([]string{"-"}, strings.NewReader(text.String()), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "application:   micro") {
		t.Errorf("stdin output:\n%s", out.String())
	}
}

func TestRunMalformedTraceFailsValidation(t *testing.T) {
	// Parses fine but violates the matching rule: rank 0 sends to rank 1,
	// which never receives.
	tr := trace.New("broken", 2)
	tr.Add(0, trace.Compute(1), trace.Send(1, 1024, 0))
	tr.Add(1, trace.Compute(1))
	path := writeFile(t, "broken.trace", func(f *os.File) error { return trace.Write(f, tr) })
	var out, errOut strings.Builder
	err := run([]string{path}, strings.NewReader(""), &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("got %v, want a 'trace is malformed' error", err)
	}
}

func TestRunHelpExitsClean(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-h"}, strings.NewReader(""), &out, &errOut); err != nil {
		t.Fatalf("-h should succeed after printing usage, got %v", err)
	}
	if !strings.Contains(errOut.String(), "usage: traceinfo") {
		t.Errorf("usage missing from -h output:\n%s", errOut.String())
	}
}

func TestRunErrorPaths(t *testing.T) {
	empty := writeFile(t, "empty.trace", func(*os.File) error { return nil })
	garbage := writeFile(t, "garbage.trace", func(f *os.File) error {
		_, err := f.WriteString("this is definitely not a trace\n")
		return err
	})
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad flag", []string{"-nope"}, "flag provided but not defined"},
		{"no args", []string{}, "expected exactly one trace file"},
		{"two args", []string{garbage, garbage}, "expected exactly one trace file"},
		{"missing file", []string{"/nonexistent/x.trace"}, "no such file"},
		{"empty input", []string{empty}, "reading input"},
		{"garbage input", []string{garbage}, "trace"},
	}
	for _, tc := range cases {
		var out, errOut strings.Builder
		err := run(tc.args, strings.NewReader(""), &out, &errOut)
		if err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
