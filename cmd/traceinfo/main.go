// Command traceinfo inspects a trace file: record statistics, per-rank
// computation-time distribution, and the Table 3 characteristics (load
// balance, parallel efficiency) measured by replaying it on the default
// platform.
//
// Usage:
//
//	traceinfo is64.trace
//	tracegen -app IS-64 -quick | traceinfo -
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/paraver"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}
}

// run is main's body, split out so tests can drive flag parsing, the
// Paraver header-sniffing branch and the error paths with injected streams.
// Every early return unwinds normally, so the deferred trace-file Close
// always runs (the old fatal(os.Exit) skipped it).
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("traceinfo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: traceinfo <file|->\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, exit 0
		}
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one trace file (or -), got %d arguments", fs.NArg())
	}

	in := stdin
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	// Sniff the header: native traces start with #PWRTRACE, Paraver files
	// with #Paraver.
	br := bufio.NewReader(in)
	head, err := br.Peek(8)
	if err != nil {
		return fmt.Errorf("reading input: %w", err)
	}
	var tr *trace.Trace
	if strings.HasPrefix(string(head), "#Paraver") {
		tr, err = paraver.Read(br)
	} else {
		tr, err = trace.Read(br)
	}
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("trace is malformed: %w", err)
	}

	fmt.Fprintf(stdout, "application:   %s\n", tr.App)
	fmt.Fprintf(stdout, "ranks:         %d\n", tr.NumRanks())
	fmt.Fprintf(stdout, "records:       %d\n", tr.NumRecords())
	fmt.Fprintf(stdout, "iterations:    %d\n", tr.Iterations())

	comp := tr.ComputeTimes()
	sorted := append([]float64(nil), comp...)
	sort.Float64s(sorted)
	fmt.Fprintf(stdout, "compute (s):   min %.4f  median %.4f  mean %.4f  max %.4f\n",
		stats.Min(comp), stats.Median(comp), stats.Mean(comp), stats.Max(comp))

	ch, err := workload.Measure(tr, dimemas.DefaultPlatform(), dvfs.FMax)
	if err != nil {
		return fmt.Errorf("replay failed: %w", err)
	}
	fmt.Fprintf(stdout, "exec time:     %.4f s (replayed at %.1f GHz on the default platform)\n", ch.Time, dvfs.FMax)
	fmt.Fprintf(stdout, "load balance:  %.2f%%\n", ch.LB*100)
	fmt.Fprintf(stdout, "parallel eff:  %.2f%%\n", ch.PE*100)

	// Compact per-rank histogram of compute time relative to the maximum.
	max := stats.Max(comp)
	if max <= 0 {
		return nil // nothing computes: no histogram to draw
	}
	fmt.Fprintln(stdout, "\nper-rank computation (fraction of max):")
	const buckets = 10
	hist := make([]int, buckets)
	for _, c := range comp {
		b := int(c / max * buckets)
		if b >= buckets {
			b = buckets - 1
		}
		hist[b]++
	}
	for b := 0; b < buckets; b++ {
		bar := make([]byte, hist[b])
		for i := range bar {
			bar[i] = '*'
		}
		fmt.Fprintf(stdout, "  %3d%%-%3d%%  %4d  %s\n", b*10, (b+1)*10, hist[b], string(bar))
	}
	return nil
}
