// Command traceinfo inspects a trace file: record statistics, per-rank
// computation-time distribution, and the Table 3 characteristics (load
// balance, parallel efficiency) measured by replaying it on the default
// platform.
//
// Usage:
//
//	traceinfo is64.trace
//	tracegen -app IS-64 -quick | traceinfo -
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/dimemas"
	"repro/internal/dvfs"
	"repro/internal/paraver"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: traceinfo <file|->\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	// Sniff the header: native traces start with #PWRTRACE, Paraver files
	// with #Paraver.
	br := bufio.NewReader(in)
	head, err := br.Peek(9)
	if err != nil {
		fatal(fmt.Errorf("reading input: %w", err))
	}
	var tr *trace.Trace
	if string(head) == "#Paraver " || string(head[:8]) == "#Paraver" {
		tr, err = paraver.Read(br)
	} else {
		tr, err = trace.Read(br)
	}
	if err != nil {
		fatal(err)
	}
	if err := tr.Validate(); err != nil {
		fatal(fmt.Errorf("trace is malformed: %w", err))
	}

	fmt.Printf("application:   %s\n", tr.App)
	fmt.Printf("ranks:         %d\n", tr.NumRanks())
	fmt.Printf("records:       %d\n", tr.NumRecords())
	fmt.Printf("iterations:    %d\n", tr.Iterations())

	comp := tr.ComputeTimes()
	sorted := append([]float64(nil), comp...)
	sort.Float64s(sorted)
	fmt.Printf("compute (s):   min %.4f  median %.4f  mean %.4f  max %.4f\n",
		stats.Min(comp), stats.Median(comp), stats.Mean(comp), stats.Max(comp))

	ch, err := workload.Measure(tr, dimemas.DefaultPlatform(), dvfs.FMax)
	if err != nil {
		fatal(fmt.Errorf("replay failed: %w", err))
	}
	fmt.Printf("exec time:     %.4f s (replayed at %.1f GHz on the default platform)\n", ch.Time, dvfs.FMax)
	fmt.Printf("load balance:  %.2f%%\n", ch.LB*100)
	fmt.Printf("parallel eff:  %.2f%%\n", ch.PE*100)

	// Compact per-rank histogram of compute time relative to the maximum.
	fmt.Println("\nper-rank computation (fraction of max):")
	const buckets = 10
	hist := make([]int, buckets)
	max := stats.Max(comp)
	for _, c := range comp {
		b := int(c / max * buckets)
		if b >= buckets {
			b = buckets - 1
		}
		hist[b]++
	}
	for b := 0; b < buckets; b++ {
		barLen := hist[b]
		bar := make([]byte, barLen)
		for i := range bar {
			bar[i] = '*'
		}
		fmt.Printf("  %3d%%-%3d%%  %4d  %s\n", b*10, (b+1)*10, hist[b], string(bar))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceinfo:", err)
	os.Exit(1)
}
