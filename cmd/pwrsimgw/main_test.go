package main

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad flag", []string{"-nope"}, "flag provided but not defined"},
		{"positional args", []string{"-backends", "http://a:1", "extra"}, "unexpected arguments"},
		{"no backends", nil, "at least one -backends URL"},
		{"blank backends", []string{"-backends", " , "}, "at least one -backends URL"},
		{"bad backend url", []string{"-backends", "://nope"}, "backend"},
		{"duplicate backends", []string{"-backends", "http://a:1,http://a:1"}, "duplicate"},
		{"bad vnodes", []string{"-backends", "http://a:1", "-vnodes", "0"}, "vnodes must be positive"},
		{"negative inflight", []string{"-backends", "http://a:1", "-max-inflight", "-1"}, "max-inflight must be non-negative"},
		{"bad timeout", []string{"-backends", "http://a:1", "-timeout", "0s"}, "timeout must be positive"},
		{"bad hedge", []string{"-backends", "http://a:1", "-hedge-after", "0s"}, "hedge-after must be positive"},
		{"bad drain", []string{"-backends", "http://a:1", "-drain", "0s"}, "drain must be positive"},
	}
	for _, tc := range cases {
		var out, errOut strings.Builder
		err := run(tc.args, &out, &errOut)
		if err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestRunHelpExitsClean(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-h"}, &out, &errOut); err != nil {
		t.Fatalf("-h returned %v, want nil", err)
	}
	if !strings.Contains(errOut.String(), "backends") {
		t.Fatal("usage text does not mention -backends")
	}
}

func TestRunBindFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var out, errOut strings.Builder
	err = run([]string{"-addr", ln.Addr().String(), "-backends", "http://127.0.0.1:1"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "address already in use") {
		t.Fatalf("expected bind failure, got %v", err)
	}
}

// TestRunServesAndShutsDownOnSignal drives the full gateway lifecycle:
// start against a fake ready backend, answer /healthz, drain on SIGTERM.
func TestRunServesAndShutsDownOnSignal(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ready"}`)
	}))
	defer backend.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var out, errOut strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-backends", backend.URL, "-health-interval", "20ms"}, &out, &errOut)
	}()

	ok := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(fmt.Sprintf("http://%s/readyz", addr))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				ok = true
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !ok {
		t.Fatal("gateway never became ready")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gateway did not exit after SIGTERM")
	}
	if !strings.Contains(out.String(), "listening on") || !strings.Contains(out.String(), "bye") {
		t.Fatalf("lifecycle log incomplete: %q", out.String())
	}
}
