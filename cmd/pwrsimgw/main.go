// Command pwrsimgw fronts a fleet of pwrsimd backends with a consistent-
// hash gateway: each request's (trace, platform) key always routes to the
// same backend, keeping every shard's replay cache hot, with health-checked
// pool membership, one hedged retry against the next ring replica, and
// load shedding when a shard saturates. The proxied /v1/* responses are
// byte-identical to hitting a backend directly.
//
// Usage:
//
//	pwrsimgw -backends http://10.0.0.1:8723,http://10.0.0.2:8723
//	pwrsimgw -addr :8700 -hedge-after 250ms -warm-apps WRF-128,SPECFEM3D-64
//
// Endpoints: every pwrsimd /v1/* route (proxied), GET /healthz, /readyz,
// /metrics (gateway-side counters). See internal/gateway and README.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gateway"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pwrsimgw:", err)
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag into its non-empty elements.
func splitList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}

// run parses flags and serves until SIGINT/SIGTERM, then drains. Split
// from main so tests can drive the flag and error paths.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pwrsimgw", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr           = fs.String("addr", ":8700", "listen address")
		backends       = fs.String("backends", "", "comma-separated pwrsimd base URLs (required)")
		vnodes         = fs.Int("vnodes", 128, "virtual nodes per backend on the hash ring")
		maxInFlight    = fs.Int("max-inflight", 0, "concurrent proxied requests per backend (0 = 4×GOMAXPROCS)")
		timeout        = fs.Duration("timeout", 60*time.Second, "per-request timeout, hedge included")
		hedgeAfter     = fs.Duration("hedge-after", 500*time.Millisecond, "hedge to the next ring replica after the primary stalls this long")
		healthInterval = fs.Duration("health-interval", time.Second, "backend /readyz polling period")
		healthTimeout  = fs.Duration("health-timeout", 2*time.Second, "per-probe timeout")
		maxBody        = fs.Int64("max-body", 8<<20, "maximum request body bytes")
		warmApps       = fs.String("warm-apps", "", "comma-separated app instances to cache-warm on a backend's shard when it joins")
		warmIters      = fs.Int("warm-iterations", 0, "generated-trace length of warming requests (0 = server default)")
		warmQuick      = fs.Bool("warm-quick", false, "skip calibration in warming requests")
		drain          = fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, exit 0
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	pool := splitList(*backends)
	if len(pool) == 0 {
		return fmt.Errorf("at least one -backends URL is required")
	}
	if *vnodes <= 0 {
		return fmt.Errorf("vnodes must be positive, got %d", *vnodes)
	}
	if *maxInFlight < 0 {
		return fmt.Errorf("max-inflight must be non-negative, got %d", *maxInFlight)
	}
	if *timeout <= 0 {
		return fmt.Errorf("timeout must be positive, got %v", *timeout)
	}
	if *hedgeAfter <= 0 {
		return fmt.Errorf("hedge-after must be positive, got %v", *hedgeAfter)
	}
	if *drain <= 0 {
		return fmt.Errorf("drain must be positive, got %v", *drain)
	}

	gw, err := gateway.New(gateway.Config{
		Addr:                  *addr,
		Backends:              pool,
		VNodes:                *vnodes,
		MaxInFlightPerBackend: *maxInFlight,
		RequestTimeout:        *timeout,
		HedgeAfter:            *hedgeAfter,
		HealthInterval:        *healthInterval,
		HealthTimeout:         *healthTimeout,
		MaxBodyBytes:          *maxBody,
		WarmApps:              splitList(*warmApps),
		WarmIterations:        *warmIters,
		WarmQuick:             *warmQuick,
	})
	if err != nil {
		return err
	}
	gw.Start()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- gw.ListenAndServe() }()
	fmt.Fprintf(stdout, "pwrsimgw: listening on %s, %d backends\n", *addr, len(pool))

	select {
	case err := <-errc:
		gw.Close()
		return err // bind failure or unexpected server exit
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "pwrsimgw: shutting down, draining proxied requests")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := gw.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stdout, "pwrsimgw: bye")
	return nil
}
