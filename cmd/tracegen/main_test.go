package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-list"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"IS-64", "WRF-128", "PEPC-128"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q", name)
		}
	}
}

func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad flag", []string{"-nope"}, "flag provided but not defined"},
		{"positional args", []string{"IS-64"}, "unexpected arguments"},
		{"missing app", []string{}, "missing -app"},
		{"unknown instance", []string{"-app", "NOPE-32"}, "unknown instance"},
		{"unknown application", []string{"-app", "NOPE", "-nprocs", "64"}, "unknown application"},
		{"bad nprocs", []string{"-app", "CG", "-nprocs", "1"}, "at least 2 processes"},
		{"bad iterations", []string{"-app", "IS-64", "-iterations", "0"}, "iterations must be positive"},
		{"bad format", []string{"-app", "IS-64", "-format", "xml"}, "unknown format"},
		{"unwritable out", []string{"-app", "IS-64", "-quick", "-o", "/nonexistent-dir/x/t.trace"}, "no such file"},
	}
	for _, tc := range cases {
		var out, errOut strings.Builder
		err := run(tc.args, &out, &errOut)
		if err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestRunGeneratesParseableTrace(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-app", "IS-32", "-iterations", "2", "-quick"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Read(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("generated trace does not parse: %v", err)
	}
	if tr.NumRanks() != 32 {
		t.Fatalf("trace has %d ranks, want 32", tr.NumRanks())
	}
	if !strings.Contains(errOut.String(), "IS-32") {
		t.Fatalf("summary line missing: %s", errOut.String())
	}
}

func TestRunWritesFileAndPrvFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "is32.trace")
	var out, errOut strings.Builder
	if err := run([]string{"-app", "IS-32", "-iterations", "2", "-quick", "-o", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatal("-o set but trace went to stdout")
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Read(strings.NewReader(string(b))); err != nil {
		t.Fatalf("trace file does not parse: %v", err)
	}

	var prv strings.Builder
	if err := run([]string{"-app", "IS-32", "-iterations", "2", "-quick", "-format", "prv"}, &prv, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(prv.String(), "#Paraver") {
		t.Fatalf("prv output missing #Paraver header: %.60q", prv.String())
	}
}
