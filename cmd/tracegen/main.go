// Command tracegen generates a calibrated synthetic application trace and
// writes it in the text trace format.
//
// Usage:
//
//	tracegen -app IS-64 -o is64.trace
//	tracegen -app CG -nprocs 256 -iterations 30 -o cg256.trace
//	tracegen -list
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/paraver"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// run is main's body, split out so tests can drive flag parsing and the
// error paths with injected streams.
func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		app     = fs.String("app", "", "Table 3 instance name (e.g. IS-64) or application name with -nprocs")
		nprocs  = fs.Int("nprocs", 0, "process count (enables interpolated instances, e.g. -app CG -nprocs 256)")
		iters   = fs.Int("iterations", 20, "iterations to generate")
		outPath = fs.String("o", "", "output file (default stdout)")
		quick   = fs.Bool("quick", false, "skip parallel-efficiency calibration (faster, LB still exact)")
		format  = fs.String("format", "text", `output format: "text" (native) or "prv" (Paraver)`)
		list    = fs.Bool("list", false, "list Table 3 instances and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, exit 0
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *list {
		fmt.Fprintf(stdout, "%-14s %8s %8s %8s\n", "instance", "nprocs", "LB", "PE")
		for _, inst := range workload.Table3() {
			fmt.Fprintf(stdout, "%-14s %8d %7.2f%% %7.2f%%\n", inst.Name, inst.NProcs, inst.TargetLB*100, inst.TargetPE*100)
		}
		return nil
	}
	if *app == "" {
		return fmt.Errorf("missing -app (use -list to see instances)")
	}
	if *iters <= 0 {
		return fmt.Errorf("iterations must be positive, got %d", *iters)
	}
	if *format != "text" && *format != "prv" {
		return fmt.Errorf("unknown format %q (want text or prv)", *format)
	}

	var inst workload.Instance
	if *nprocs > 0 {
		inst, err = workload.InstanceFor(*app, *nprocs)
	} else {
		inst, err = workload.FindInstance(*app)
	}
	if err != nil {
		return err
	}

	cfg := workload.DefaultConfig()
	cfg.Iterations = *iters
	cfg.SkipPECalibration = *quick
	tr, err := workload.Generate(inst, cfg)
	if err != nil {
		return err
	}

	out := stdout
	if *outPath != "" {
		f, cerr := os.Create(*outPath)
		if cerr != nil {
			return cerr
		}
		bw := bufio.NewWriter(f)
		// A failed flush or close means a truncated trace file: surface it
		// as run's error (exit 1) unless an earlier error already won.
		defer func() {
			if ferr := bw.Flush(); ferr != nil && err == nil {
				err = ferr
			}
			if ferr := f.Close(); ferr != nil && err == nil {
				err = ferr
			}
		}()
		out = bw
	}
	switch *format {
	case "text":
		err = trace.Write(out, tr)
	case "prv":
		err = paraver.Write(out, tr)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "tracegen: %s — %d ranks, %d records\n", inst.Name, tr.NumRanks(), tr.NumRecords())
	return nil
}
