// Command tracegen generates a calibrated synthetic application trace and
// writes it in the text trace format.
//
// Usage:
//
//	tracegen -app IS-64 -o is64.trace
//	tracegen -app CG -nprocs 256 -iterations 30 -o cg256.trace
//	tracegen -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/paraver"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		app     = flag.String("app", "", "Table 3 instance name (e.g. IS-64) or application name with -nprocs")
		nprocs  = flag.Int("nprocs", 0, "process count (enables interpolated instances, e.g. -app CG -nprocs 256)")
		iters   = flag.Int("iterations", 20, "iterations to generate")
		outPath = flag.String("o", "", "output file (default stdout)")
		quick   = flag.Bool("quick", false, "skip parallel-efficiency calibration (faster, LB still exact)")
		format  = flag.String("format", "text", `output format: "text" (native) or "prv" (Paraver)`)
		list    = flag.Bool("list", false, "list Table 3 instances and exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-14s %8s %8s %8s\n", "instance", "nprocs", "LB", "PE")
		for _, inst := range workload.Table3() {
			fmt.Printf("%-14s %8d %7.2f%% %7.2f%%\n", inst.Name, inst.NProcs, inst.TargetLB*100, inst.TargetPE*100)
		}
		return
	}
	if *app == "" {
		fatal(fmt.Errorf("missing -app (use -list to see instances)"))
	}

	var inst workload.Instance
	var err error
	if *nprocs > 0 {
		inst, err = workload.InstanceFor(*app, *nprocs)
	} else {
		inst, err = workload.FindInstance(*app)
	}
	if err != nil {
		fatal(err)
	}

	cfg := workload.DefaultConfig()
	cfg.Iterations = *iters
	cfg.SkipPECalibration = *quick
	tr, err := workload.Generate(inst, cfg)
	if err != nil {
		fatal(err)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		bw := bufio.NewWriter(f)
		defer func() {
			if err := bw.Flush(); err != nil {
				fatal(err)
			}
		}()
		out = bw
	}
	switch *format {
	case "text":
		err = trace.Write(out, tr)
	case "prv":
		err = paraver.Write(out, tr)
	default:
		err = fmt.Errorf("unknown format %q (want text or prv)", *format)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %s — %d ranks, %d records\n", inst.Name, tr.NumRanks(), tr.NumRecords())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
