// Command pwrsimload drives deterministic closed-loop load at a pwrsimd
// backend or a pwrsimgw fleet and reports throughput and latency quantiles.
// The request stream is reproducible from the seed: worker w draws every
// (endpoint, key) choice from a PRNG seeded with seed+w, with Zipf key
// popularity so there is a cacheable hot set and an evicting cold tail.
//
// Usage:
//
//	pwrsimload -target http://localhost:8700 -requests 500
//	pwrsimload -target http://localhost:8723 -workers 8 -duration 30s \
//	    -keys 32 -zipf 1.5 -profile analyze=3,replay=1 -json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pwrsimload:", err)
		os.Exit(1)
	}
}

// parseProfile reads "analyze=3,replay=1,apps=1" into weights.
func parseProfile(s string) (loadgen.Profile, error) {
	var p loadgen.Profile
	if s == "" {
		return p, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return p, fmt.Errorf("profile entry %q is not name=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return p, fmt.Errorf("profile weight %q must be a non-negative integer", val)
		}
		switch strings.TrimSpace(name) {
		case loadgen.EndpointAnalyze:
			p.Analyze = w
		case loadgen.EndpointReplay:
			p.Replay = w
		case loadgen.EndpointApps:
			p.Apps = w
		default:
			return p, fmt.Errorf("unknown profile endpoint %q (want analyze, replay or apps)", name)
		}
	}
	return p, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pwrsimload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target   = fs.String("target", "", "base URL of the pwrsimd/pwrsimgw to load (required)")
		workers  = fs.Int("workers", 4, "closed-loop concurrency")
		requests = fs.Int("requests", 0, "stop after this many requests (0 = duration-bounded)")
		duration = fs.Duration("duration", 0, "stop after this wall-clock budget (0 = request-bounded)")
		seed     = fs.Int64("seed", 1, "PRNG seed; identical seeds replay identical request streams")
		keys     = fs.Int("keys", 16, "distinct trace keys (cache entries) in play")
		zipfS    = fs.Float64("zipf", 1.5, "Zipf skew exponent for key popularity (> 1)")
		app      = fs.String("app", "IS-32", "trace app requested")
		iters    = fs.Int("iterations", 3, "trace length of the hottest key; key i adds i")
		quick    = fs.Bool("quick", true, "skip calibration in generated traces")
		profile  = fs.String("profile", "analyze=1", "endpoint mix, e.g. analyze=3,replay=1,apps=1")
		timeout  = fs.Duration("timeout", 60*time.Second, "per-request timeout")
		asJSON   = fs.Bool("json", false, "emit the result as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *target == "" {
		return fmt.Errorf("-target is required")
	}
	if *workers <= 0 {
		return fmt.Errorf("workers must be positive, got %d", *workers)
	}
	if *requests < 0 {
		return fmt.Errorf("requests must be non-negative, got %d", *requests)
	}
	if *requests == 0 && *duration <= 0 {
		return fmt.Errorf("one of -requests or -duration is required")
	}
	if *keys <= 0 {
		return fmt.Errorf("keys must be positive, got %d", *keys)
	}
	if *zipfS <= 1 {
		return fmt.Errorf("zipf must be > 1, got %g", *zipfS)
	}
	if *iters <= 0 {
		return fmt.Errorf("iterations must be positive, got %d", *iters)
	}
	if *timeout <= 0 {
		return fmt.Errorf("timeout must be positive, got %v", *timeout)
	}
	prof, err := parseProfile(*profile)
	if err != nil {
		return err
	}
	if prof.Analyze+prof.Replay+prof.Apps <= 0 {
		return fmt.Errorf("profile %q enables no endpoints", *profile)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:        strings.TrimSuffix(*target, "/"),
		Workers:        *workers,
		Requests:       *requests,
		Duration:       *duration,
		Seed:           *seed,
		Keys:           *keys,
		ZipfS:          *zipfS,
		App:            *app,
		BaseIterations: *iters,
		Quick:          *quick,
		Profile:        prof,
		RequestTimeout: *timeout,
	})
	if err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	ok := res.Requests - res.Errors
	fmt.Fprintf(stdout, "requests   %d (%d ok, %d errors)\n", res.Requests, ok, res.Errors)
	fmt.Fprintf(stdout, "elapsed    %v\n", res.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(stdout, "throughput %.1f req/s\n", res.Throughput)
	fmt.Fprintf(stdout, "latency    p50 %v  p90 %v  p99 %v  max %v\n",
		res.P50.Round(time.Microsecond), res.P90.Round(time.Microsecond),
		res.P99.Round(time.Microsecond), res.Max.Round(time.Microsecond))
	for _, ep := range []string{loadgen.EndpointAnalyze, loadgen.EndpointReplay, loadgen.EndpointApps} {
		if n := res.ByEndpoint[ep]; n > 0 {
			fmt.Fprintf(stdout, "  %-8s %d\n", ep, n)
		}
	}
	for code, n := range res.ByStatus {
		if code < 200 || code > 299 {
			fmt.Fprintf(stdout, "  status %d: %d\n", code, n)
		}
	}
	return nil
}
