package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/loadgen"
)

func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad flag", []string{"-nope"}, "flag provided but not defined"},
		{"positional args", []string{"-target", "http://x", "-requests", "1", "extra"}, "unexpected arguments"},
		{"no target", []string{"-requests", "1"}, "-target is required"},
		{"no budget", []string{"-target", "http://x"}, "one of -requests or -duration"},
		{"bad workers", []string{"-target", "http://x", "-requests", "1", "-workers", "0"}, "workers must be positive"},
		{"bad zipf", []string{"-target", "http://x", "-requests", "1", "-zipf", "1"}, "zipf must be > 1"},
		{"bad keys", []string{"-target", "http://x", "-requests", "1", "-keys", "0"}, "keys must be positive"},
		{"bad profile entry", []string{"-target", "http://x", "-requests", "1", "-profile", "analyze"}, "not name=weight"},
		{"bad profile weight", []string{"-target", "http://x", "-requests", "1", "-profile", "analyze=x"}, "non-negative integer"},
		{"unknown endpoint", []string{"-target", "http://x", "-requests", "1", "-profile", "nope=1"}, "unknown profile endpoint"},
		{"empty profile", []string{"-target", "http://x", "-requests", "1", "-profile", "analyze=0"}, "enables no endpoints"},
	}
	for _, tc := range cases {
		var out, errOut strings.Builder
		err := run(tc.args, &out, &errOut)
		if err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseProfile(t *testing.T) {
	p, err := parseProfile("analyze=3, replay=1,apps=2")
	if err != nil {
		t.Fatal(err)
	}
	if p != (loadgen.Profile{Analyze: 3, Replay: 1, Apps: 2}) {
		t.Fatalf("parseProfile = %+v", p)
	}
}

func TestRunTextAndJSONOutput(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok": true}`)
	}))
	defer ts.Close()

	var out, errOut strings.Builder
	if err := run([]string{"-target", ts.URL, "-requests", "20", "-workers", "2"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"requests   20 (20 ok, 0 errors)", "throughput", "p50"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := run([]string{"-target", ts.URL, "-requests", "20", "-json"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	var res loadgen.Result
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out.String())
	}
	if res.Requests != 20 || res.Errors != 0 {
		t.Fatalf("JSON result = %+v", res)
	}
}
