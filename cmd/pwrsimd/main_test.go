package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad flag", []string{"-nope"}, "flag provided but not defined"},
		{"positional args", []string{"extra"}, "unexpected arguments"},
		{"negative inflight", []string{"-max-inflight", "-1"}, "max-inflight must be non-negative"},
		{"bad timeout", []string{"-timeout", "0s"}, "timeout must be positive"},
		{"bad drain", []string{"-drain", "-1s"}, "drain must be positive"},
	}
	for _, tc := range cases {
		var out, errOut strings.Builder
		err := run(tc.args, &out, &errOut)
		if err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestRunBindFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var out, errOut strings.Builder
	err = run([]string{"-addr", ln.Addr().String()}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "address already in use") {
		t.Fatalf("expected bind failure, got %v", err)
	}
}

// TestRunServesAndShutsDownOnSignal drives the full daemon lifecycle:
// start, answer /healthz, drain on SIGTERM, exit nil.
func TestRunServesAndShutsDownOnSignal(t *testing.T) {
	// Reserve a free port, release it, and hope nobody grabs it in between
	// (standard free-port dance; the bind-failure path is tested above).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var out, errOut strings.Builder
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", addr}, &out, &errOut) }()

	url := fmt.Sprintf("http://%s/healthz", addr)
	ok := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				ok = true
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !ok {
		t.Fatal("daemon never answered /healthz")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if !strings.Contains(out.String(), "listening on") || !strings.Contains(out.String(), "bye") {
		t.Fatalf("lifecycle log incomplete: %q", out.String())
	}
}
