// Command pwrsimd serves the simulation pipeline of "Power-Aware Load
// Balancing Of Large Scale MPI Applications" (Etinski et al., IPDPS 2009)
// as a long-running HTTP daemon with a shared, bounded replay cache.
//
// Usage:
//
//	pwrsimd -addr :8723
//	pwrsimd -addr :8723 -max-inflight 16 -timeout 60s -cache-entries 512
//
// Endpoints: POST /v1/replay, /v1/analyze, /v1/analyze/batch, /v1/gearopt,
// /v1/powercap, /v1/tracegen, GET /v1/apps, /healthz, /readyz, /metrics.
// See internal/server and README.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dimemas"
	"repro/internal/faults"
	"repro/internal/server"
)

// defaultPlatform seeds the platform flags, so `pwrsimd -h` shows the
// paper's Myrinet-class constants as the defaults.
var defaultPlatform = dimemas.DefaultPlatform()

// parseFaultPoint maps a -fault-points name onto the faults taxonomy.
func parseFaultPoint(name string) (faults.Point, error) {
	for _, p := range faults.Points() {
		if string(p) == name {
			return p, nil
		}
	}
	return "", fmt.Errorf("unknown fault point %q (known: %v)", name, faults.Points())
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pwrsimd:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until SIGINT/SIGTERM, then drains in-flight
// requests. Split from main so tests can drive the flag and error paths.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pwrsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8723", "listen address")
		maxInFlight  = fs.Int("max-inflight", 0, "concurrent simulation requests (0 = 2×GOMAXPROCS)")
		timeout      = fs.Duration("timeout", 60*time.Second, "per-request timeout")
		cacheEntries = fs.Int("cache-entries", 512, "replay-cache LRU bound (negative = unbounded)")
		traceEntries = fs.Int("trace-cache-entries", 32, "generated-workload memo LRU bound (negative = unbounded)")
		maxBody      = fs.Int64("max-body", 8<<20, "maximum request body bytes")
		drain        = fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		drainGrace   = fs.Duration("drain-grace", 0, "keep accepting (with /readyz answering 503) this long after SIGTERM so load balancers can route around the drain")
		latency      = fs.Float64("latency", defaultPlatform.Latency, "flat-link message latency in seconds")
		bandwidth    = fs.Float64("bandwidth", defaultPlatform.Bandwidth, "flat-link bandwidth in bytes per second")
		eagerLimit   = fs.Int64("eager-limit", defaultPlatform.EagerLimit, "largest message size (bytes) sent eagerly; larger messages rendezvous")
		overhead     = fs.Float64("overhead", defaultPlatform.Overhead, "per-call CPU overhead in seconds")
		faultRate    = fs.Uint64("fault-rate", 0, "inject one fault per N checks at each fault point (0 = disabled; chaos testing only)")
		faultSeed    = fs.Uint64("fault-seed", 1, "deterministic seed for fault injection")
		faultPoints  = fs.String("fault-points", "", "comma-separated fault points to arm (default: all; see internal/faults)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, exit 0
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *maxInFlight < 0 {
		return fmt.Errorf("max-inflight must be non-negative, got %d", *maxInFlight)
	}
	if *timeout <= 0 {
		return fmt.Errorf("timeout must be positive, got %v", *timeout)
	}
	if *drain <= 0 {
		return fmt.Errorf("drain must be positive, got %v", *drain)
	}
	if *drainGrace < 0 {
		return fmt.Errorf("drain-grace must be non-negative, got %v", *drainGrace)
	}
	if *drainGrace >= *drain {
		return fmt.Errorf("drain-grace (%v) must be shorter than the drain budget (%v)", *drainGrace, *drain)
	}
	platform := defaultPlatform
	platform.Latency = *latency
	platform.Bandwidth = *bandwidth
	platform.EagerLimit = *eagerLimit
	platform.Overhead = *overhead
	if err := platform.Validate(); err != nil {
		return err
	}
	if *faultRate > 0 {
		points := faults.Points()
		if *faultPoints != "" {
			points = points[:0]
			for _, name := range strings.Split(*faultPoints, ",") {
				p, err := parseFaultPoint(strings.TrimSpace(name))
				if err != nil {
					return err
				}
				points = append(points, p)
			}
		}
		rates := make(map[faults.Point]uint64, len(points))
		for _, p := range points {
			rates[p] = *faultRate
		}
		faults.Enable(faults.NewRegistry(*faultSeed, rates))
		fmt.Fprintf(stderr, "pwrsimd: WARNING: fault injection armed (seed %d, 1-in-%d at %d points) — chaos testing only\n",
			*faultSeed, *faultRate, len(points))
	} else if *faultPoints != "" {
		return fmt.Errorf("fault-points requires fault-rate > 0")
	}

	srv := server.New(server.Config{
		Addr:              *addr,
		MaxInFlight:       *maxInFlight,
		RequestTimeout:    *timeout,
		CacheEntries:      *cacheEntries,
		TraceCacheEntries: *traceEntries,
		MaxBodyBytes:      *maxBody,
		DrainGrace:        *drainGrace,
		Platform:          platform,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(stdout, "pwrsimd: listening on %s\n", *addr)

	select {
	case err := <-errc:
		return err // bind failure or unexpected server exit
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "pwrsimd: shutting down, draining in-flight requests")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(stdout, "pwrsimd: bye")
	return nil
}
