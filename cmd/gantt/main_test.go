package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// writeTraceFile serializes a small imbalanced trace to a temp file.
func writeTraceFile(t *testing.T) string {
	t.Helper()
	tr := trace.New("micro", 4)
	loads := []float64{1.0, 0.25, 0.25, 0.25}
	for it := 0; it < 2; it++ {
		for r, w := range loads {
			tr.Add(r, trace.Compute(w))
		}
		for r := 0; r < 4; r++ {
			tr.Add(r, trace.Coll(trace.CollBarrier, 0), trace.IterMark())
		}
	}
	path := filepath.Join(t.TempDir(), "micro.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRendersBothCharts(t *testing.T) {
	path := writeTraceFile(t)
	var out, errOut strings.Builder
	if err := run([]string{path}, strings.NewReader(""), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"micro — original execution", "after MAX", "LB 43.75%", "0/4 CPUs over-clocked"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunAVGAndGearCounts(t *testing.T) {
	path := writeTraceFile(t)
	var out, errOut strings.Builder
	if err := run([]string{"-algorithm", "avg", "-gears", "6", "-width", "60", "-ranks", "2", path}, strings.NewReader(""), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "after AVG") {
		t.Errorf("output missing AVG chart:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "uniform-6+oc") {
		t.Errorf("AVG should extend the discrete set with the over-clock gear:\n%s", out.String())
	}
}

func TestRunReadsStdin(t *testing.T) {
	path := writeTraceFile(t)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if err := run([]string{"-"}, strings.NewReader(string(b)), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "micro") {
		t.Errorf("stdin render missing app name:\n%s", out.String())
	}
}

func TestRunHelpExitsClean(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-h"}, strings.NewReader(""), &out, &errOut); err != nil {
		t.Fatalf("-h should succeed after printing usage, got %v", err)
	}
	if !strings.Contains(errOut.String(), "usage: gantt") {
		t.Errorf("usage missing from -h output:\n%s", errOut.String())
	}
}

func TestRunErrorPaths(t *testing.T) {
	path := writeTraceFile(t)
	bad := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(bad, []byte("not a trace at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad flag", []string{"-nope"}, "flag provided but not defined"},
		{"no args", []string{}, "expected exactly one trace file"},
		{"two args", []string{path, path}, "expected exactly one trace file"},
		{"zero width", []string{"-width", "0", path}, "width must be positive"},
		{"negative width", []string{"-width", "-3", path}, "width must be positive"},
		{"zero ranks", []string{"-ranks", "0", path}, "ranks must be positive"},
		{"missing file", []string{"/nonexistent/x.trace"}, "no such file"},
		{"malformed trace", []string{bad}, "trace"},
		{"bad algorithm", []string{"-algorithm", "median", path}, "unknown algorithm"},
		{"bad gear set", []string{"-gears", "plenty", path}, "bad gear set"},
		{"one gear", []string{"-gears", "1", path}, "at least 2 gears"},
	}
	for _, tc := range cases {
		var out, errOut strings.Builder
		err := run(tc.args, strings.NewReader(""), &out, &errOut)
		if err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
