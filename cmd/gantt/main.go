// Command gantt renders a trace's execution as an ASCII Gantt chart, before
// and (optionally) after applying a balancing algorithm — the textual form
// of the paper's Figure 1.
//
// Usage:
//
//	gantt is64.trace
//	gantt -algorithm max -gears 6 is64.trace
//	gantt -algorithm avg -gears continuous -width 120 bt-mz.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/gantt"
	"repro/internal/trace"
)

func main() {
	var (
		algName = flag.String("algorithm", "max", "balancing algorithm: max or avg")
		gears   = flag.String("gears", "continuous", `gear set: "continuous", "unlimited" or a gear count like "6"`)
		width   = flag.Int("width", 100, "chart width in characters")
		ranks   = flag.Int("ranks", 24, "maximum rank rows to draw")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gantt [flags] <file|->\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	tr, err := trace.Read(in)
	if err != nil {
		fatal(err)
	}

	set, err := parseGearSet(*gears)
	if err != nil {
		fatal(err)
	}
	var alg core.Algorithm
	switch *algName {
	case "max":
		alg = core.MAX
	case "avg":
		alg = core.AVG
		if !set.Continuous() {
			set, err = set.WithOverclockGear(dvfs.Gear{Freq: dvfs.OverclockFreq, Volt: dvfs.OverclockVolt})
		} else {
			set, err = set.ScaleMax(1.10)
		}
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown algorithm %q (want max or avg)", *algName))
	}

	res, err := analysis.Run(analysis.Config{
		Trace:           tr,
		Set:             set,
		Algorithm:       alg,
		RecordTimelines: true,
	})
	if err != nil {
		fatal(err)
	}

	opts := gantt.Options{Width: *width, MaxRanks: *ranks}
	fmt.Printf("%s — original execution (LB %.2f%%, PE %.2f%%)\n\n", tr.App, res.LB*100, res.PE*100)
	if err := gantt.Render(os.Stdout, res.Orig.Timeline, res.Orig.Time, opts); err != nil {
		fatal(err)
	}
	fmt.Printf("\n%s — after %s with %s\n\n", tr.App, res.Assignment.Algorithm, set.Name())
	if err := gantt.Render(os.Stdout, res.New.Timeline, res.New.Time, opts); err != nil {
		fatal(err)
	}
	fmt.Printf("\n%s; %d/%d CPUs over-clocked\n", res.Norm, res.Assignment.Overclocked, tr.NumRanks())
}

func parseGearSet(s string) (*dvfs.Set, error) {
	switch s {
	case "continuous", "limited":
		return dvfs.ContinuousLimited(), nil
	case "unlimited":
		return dvfs.ContinuousUnlimited(), nil
	default:
		n, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad gear set %q (want continuous, unlimited or a count)", s)
		}
		return dvfs.Uniform(n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gantt:", err)
	os.Exit(1)
}
