// Command gantt renders a trace's execution as an ASCII Gantt chart, before
// and (optionally) after applying a balancing algorithm — the textual form
// of the paper's Figure 1.
//
// Usage:
//
//	gantt is64.trace
//	gantt -algorithm max -gears 6 is64.trace
//	gantt -algorithm avg -gears continuous -width 120 bt-mz.trace
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/gantt"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gantt:", err)
		os.Exit(1)
	}
}

// run is main's body, split out so tests can drive flag parsing and the
// error paths with injected streams. Unlike the old fatal(os.Exit) shape,
// every early return unwinds normally, so the deferred trace-file Close
// always runs.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gantt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		algName = fs.String("algorithm", "max", "balancing algorithm: max or avg")
		gears   = fs.String("gears", "continuous", `gear set: "continuous", "unlimited" or a gear count like "6"`)
		width   = fs.Int("width", 100, "chart width in characters")
		ranks   = fs.Int("ranks", 24, "maximum rank rows to draw")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: gantt [flags] <file|->\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, exit 0
		}
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one trace file (or -), got %d arguments", fs.NArg())
	}
	if *width <= 0 {
		return fmt.Errorf("width must be positive, got %d", *width)
	}
	if *ranks <= 0 {
		return fmt.Errorf("ranks must be positive, got %d", *ranks)
	}

	in := stdin
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	tr, err := trace.Read(in)
	if err != nil {
		return err
	}

	set, err := parseGearSet(*gears)
	if err != nil {
		return err
	}
	var alg core.Algorithm
	switch *algName {
	case "max":
		alg = core.MAX
	case "avg":
		alg = core.AVG
		if !set.Continuous() {
			set, err = set.WithOverclockGear(dvfs.Gear{Freq: dvfs.OverclockFreq, Volt: dvfs.OverclockVolt})
		} else {
			set, err = set.ScaleMax(1.10)
		}
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown algorithm %q (want max or avg)", *algName)
	}

	res, err := analysis.Run(analysis.Config{
		Trace:           tr,
		Set:             set,
		Algorithm:       alg,
		RecordTimelines: true,
	})
	if err != nil {
		return err
	}

	opts := gantt.Options{Width: *width, MaxRanks: *ranks}
	fmt.Fprintf(stdout, "%s — original execution (LB %.2f%%, PE %.2f%%)\n\n", tr.App, res.LB*100, res.PE*100)
	if err := gantt.Render(stdout, res.Orig.Timeline, res.Orig.Time, opts); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\n%s — after %s with %s\n\n", tr.App, res.Assignment.Algorithm, set.Name())
	if err := gantt.Render(stdout, res.New.Timeline, res.New.Time, opts); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\n%s; %d/%d CPUs over-clocked\n", res.Norm, res.Assignment.Overclocked, tr.NumRanks())
	return nil
}

func parseGearSet(s string) (*dvfs.Set, error) {
	switch s {
	case "continuous", "limited":
		return dvfs.ContinuousLimited(), nil
	case "unlimited":
		return dvfs.ContinuousUnlimited(), nil
	default:
		n, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad gear set %q (want continuous, unlimited or a count)", s)
		}
		return dvfs.Uniform(n)
	}
}
