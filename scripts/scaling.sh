#!/usr/bin/env bash
# scaling.sh — fleet scaling experiment for the pwrsimgw gateway.
#
# Boots 1, 2 and 4 pwrsimd backends (each with a deliberately small replay-
# cache budget), fronts them with pwrsimgw, and drives an identical
# zipf-skewed pwrsimload workload at each fleet size. Because every backend
# has a fixed cache budget, the fleet's aggregate cache grows with its size;
# consistent-hash routing keeps each key on one backend, so adding backends
# converts expensive cache misses (full trace generation + calibration +
# baseline simulation) into cheap retimes. That cache-capacity scaling — not
# CPU parallelism — is what the experiment measures, which keeps it
# meaningful even on a single-core host.
#
# Usage: scripts/scaling.sh [outdir]
# Emits a markdown table on stdout and per-run JSON under outdir.
set -euo pipefail

OUT="${1:-$(mktemp -d /tmp/pwrsim-scaling.XXXXXX)}"
mkdir -p "$OUT"
BIN="$OUT/bin"
mkdir -p "$BIN"

# --- workload shape (see EXPERIMENTS.md for the reasoning) -----------------
KEYS=20            # distinct (app, iterations) cache identities in play
ZIPF=2.0           # key popularity skew
CACHE=8            # per-backend replay-cache entries: 1 backend holds 8 of KEYS
REQUESTS=1500      # measured requests per fleet size
WORKERS=4          # closed-loop concurrency
ITERS=150          # hottest key's trace length (misses are ~50x hits)
SEED=1
PROFILE="analyze=1"
BASE_PORT=8731
GW_PORT=8730

cd "$(dirname "$0")/.."
echo "building binaries..." >&2
go build -o "$BIN/pwrsimd" ./cmd/pwrsimd
go build -o "$BIN/pwrsimgw" ./cmd/pwrsimgw
go build -o "$BIN/pwrsimload" ./cmd/pwrsimload

PIDS=()
cleanup() {
  for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

wait_ready() { # url
  for _ in $(seq 1 200); do
    if curl -sf -o /dev/null "$1/readyz"; then return 0; fi
    sleep 0.05
  done
  echo "FATAL: $1 never became ready" >&2
  return 1
}

scrape() { # url metric -> value
  curl -sf "$1/metrics" | awk -v m="$2" '$1 == m { print $2 }'
}

declare -A TPUT HITRATE
for N in 1 2 4; do
  echo "=== fleet size $N ===" >&2
  BACKENDS=""
  BPORTS=()
  for i in $(seq 0 $((N - 1))); do
    port=$((BASE_PORT + i))
    BPORTS+=("$port")
    "$BIN/pwrsimd" -addr "127.0.0.1:$port" \
      -cache-entries "$CACHE" -trace-cache-entries "$CACHE" \
      -max-inflight $((WORKERS * 2)) \
      >"$OUT/pwrsimd-$N-$i.log" 2>&1 &
    PIDS+=($!)
    BACKENDS="${BACKENDS:+$BACKENDS,}http://127.0.0.1:$port"
  done
  "$BIN/pwrsimgw" -addr "127.0.0.1:$GW_PORT" -backends "$BACKENDS" \
    -health-interval 200ms >"$OUT/pwrsimgw-$N.log" 2>&1 &
  PIDS+=($!)
  for p in "${BPORTS[@]}"; do wait_ready "http://127.0.0.1:$p"; done
  wait_ready "http://127.0.0.1:$GW_PORT"

  # Gateway transparency: the proxied response must be byte-identical to a
  # direct backend hit for the same request.
  IDBODY="{\"trace\": {\"app\": \"IS-32\", \"iterations\": $ITERS, \"quick\": false}, \"gear_set\": {\"kind\": \"uniform\"}}"
  curl -sf -X POST -H 'Content-Type: application/json' -d "$IDBODY" \
    "http://127.0.0.1:$GW_PORT/v1/analyze" >"$OUT/via-gateway-$N.json"
  curl -sf -X POST -H 'Content-Type: application/json' -d "$IDBODY" \
    "http://127.0.0.1:${BPORTS[0]}/v1/analyze" >"$OUT/direct-$N.json"
  if ! cmp -s "$OUT/via-gateway-$N.json" "$OUT/direct-$N.json"; then
    echo "FATAL: gateway response differs from direct backend response" >&2
    exit 1
  fi
  echo "byte-identity: gateway == direct" >&2

  LOAD=("$BIN/pwrsimload" -target "http://127.0.0.1:$GW_PORT" \
    -workers "$WORKERS" -requests "$REQUESTS" -seed "$SEED" \
    -keys "$KEYS" -zipf "$ZIPF" -iterations "$ITERS" -quick=false \
    -profile "$PROFILE" -json)

  # Warm-up pass: reach cache steady state so the measured run reflects
  # sustained operation, not first-touch compulsory misses.
  "${LOAD[@]}" >"$OUT/warmup-$N.json"

  # Snapshot cache counters, run the measured pass, snapshot again; the
  # delta is the measured run's fleet-wide hit rate.
  H0=0; M0=0
  for p in "${BPORTS[@]}"; do
    H0=$((H0 + $(scrape "http://127.0.0.1:$p" pwrsimd_cache_hits_total)))
    M0=$((M0 + $(scrape "http://127.0.0.1:$p" pwrsimd_cache_misses_total)))
  done
  "${LOAD[@]}" >"$OUT/measured-$N.json"
  H1=0; M1=0
  for p in "${BPORTS[@]}"; do
    H1=$((H1 + $(scrape "http://127.0.0.1:$p" pwrsimd_cache_hits_total)))
    M1=$((M1 + $(scrape "http://127.0.0.1:$p" pwrsimd_cache_misses_total)))
  done

  TPUT[$N]=$(awk '/"throughput_rps"/ { gsub(/[,"]/,""); print $2 }' "$OUT/measured-$N.json")
  HITRATE[$N]=$(awk -v h=$((H1 - H0)) -v m=$((M1 - M0)) 'BEGIN { t = h + m; printf (t ? "%.3f" : "0"), h / t }')
  ERRS=$(awk '/"errors"/ { gsub(/[,"]/,""); print $2 }' "$OUT/measured-$N.json")
  if [ "$ERRS" != "0" ]; then
    echo "WARNING: fleet size $N saw $ERRS load errors" >&2
  fi
  echo "fleet=$N throughput=${TPUT[$N]} rps, hit-rate=${HITRATE[$N]}" >&2

  cleanup
  PIDS=()
done

S1=${TPUT[1]}
echo
echo "| Backends | Throughput (req/s) | Speedup vs 1 | Fleet cache hit-rate |"
echo "|---------:|-------------------:|-------------:|---------------------:|"
for N in 1 2 4; do
  SPEEDUP=$(awk -v a="${TPUT[$N]}" -v b="$S1" 'BEGIN { printf "%.2f", a / b }')
  echo "| $N | ${TPUT[$N]} | ${SPEEDUP}x | ${HITRATE[$N]} |"
done
echo
echo "workload: $REQUESTS requests, $WORKERS workers, $KEYS keys, zipf $ZIPF," \
     "iterations $ITERS (quick=false), cache $CACHE entries/backend, seed $SEED"
echo "raw JSON: $OUT" >&2
